//! Observability: per-replica metrics and request-lifecycle tracing.
//!
//! The paper's analytic model (§3) predicts throughput and latency from the
//! number of messages the bottleneck node processes per commit. This module
//! provides the instrumentation to *observe* that quantity (and its
//! neighbors: queue depths, batch occupancy, WAL traffic, drops by cause) on
//! a live or simulated replica, so the model's inputs can be audited instead
//! of assumed.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Recording a metric never consumes randomness, never
//!    reads a wall clock, and never perturbs event ordering — two simulator
//!    runs with the same seed produce byte-identical snapshots.
//! 2. **Cheap, and free when off.** Counters are fixed-size arrays indexed
//!    by enum (allocated once at registry construction); per-message-type
//!    maps allocate only on the first sighting of a type. A runtime that
//!    does not construct a registry pays nothing — the simulator's hot path
//!    performs no allocation when metrics are disabled.
//! 3. **No silent loss.** Every place a message can die routes through
//!    [`DropCause`]; the catch-all [`DropCause::Unexplained`] exists so
//!    chaos digests and CI can assert it stays zero.
//!
//! Counters saturate instead of wrapping: a counter that hits `u64::MAX`
//! stays there, so long chaos runs can never alias a huge count to a small
//! one.

use crate::id::{NodeId, RequestId};
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scalar event counters a replica or runtime accumulates.
///
/// `MsgsSent`/`MsgsReceived` count protocol messages with broadcast fanned
/// out per recipient — the "messages processed per commit" quantity of the
/// paper's load formulas. The per-message-type breakdown lives in
/// [`MetricsRegistry::sent_of`] / [`MetricsRegistry::recv_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Protocol messages sent (unicast, plus one per broadcast recipient).
    MsgsSent,
    /// Protocol messages received and handled.
    MsgsReceived,
    /// Client commands carried by sent messages: with batching, one `P2a`
    /// carrying 8 commands adds 8 here and 1 to `MsgsSent`, so
    /// `CmdsSent / MsgsSent` over proposal types is the batch occupancy.
    CmdsSent,
    /// Client requests delivered to `on_request`.
    Requests,
    /// Client replies emitted.
    Replies,
    /// Client requests forwarded to another replica.
    Forwards,
    /// Wrong-leader redirects answered to smart clients (sharded runtime).
    Redirects,
    /// Timer events fired.
    TimerFires,
    /// WAL records appended.
    WalAppends,
    /// WAL fsyncs performed.
    WalFsyncs,
    /// Phase-2 (or equivalent) retransmissions of a stuck window.
    Retransmissions,
    /// Log slots committed (leader-observed).
    Commits,
    /// Client commands executed against the state machine.
    Executes,
    /// Transport connections opened: accepted by a listener or dialed out
    /// to a peer.
    ConnAccepts,
    /// Transport connections closed. After an orderly shutdown
    /// `ConnAccepts == ConnCloses`; the conservation audit asserts it.
    ConnCloses,
}

impl Metric {
    /// Every counter, in snapshot order.
    pub const ALL: [Metric; 15] = [
        Metric::MsgsSent,
        Metric::MsgsReceived,
        Metric::CmdsSent,
        Metric::Requests,
        Metric::Replies,
        Metric::Forwards,
        Metric::Redirects,
        Metric::TimerFires,
        Metric::WalAppends,
        Metric::WalFsyncs,
        Metric::Retransmissions,
        Metric::Commits,
        Metric::Executes,
        Metric::ConnAccepts,
        Metric::ConnCloses,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Metric::MsgsSent => "msgs_sent",
            Metric::MsgsReceived => "msgs_received",
            Metric::CmdsSent => "cmds_sent",
            Metric::Requests => "requests",
            Metric::Replies => "replies",
            Metric::Forwards => "forwards",
            Metric::Redirects => "redirects",
            Metric::TimerFires => "timer_fires",
            Metric::WalAppends => "wal_appends",
            Metric::WalFsyncs => "wal_fsyncs",
            Metric::Retransmissions => "retransmissions",
            Metric::Commits => "commits",
            Metric::Executes => "executes",
            Metric::ConnAccepts => "conn_accepts",
            Metric::ConnCloses => "conn_closes",
        }
    }
}

/// Why a message (or client request) was dropped. Every loss path in the
/// simulator and the transports maps to exactly one cause; anything that
/// cannot name its cause must use [`DropCause::Unexplained`], which chaos
/// digests assert stays zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropCause {
    /// Serialization failed before the message hit the wire.
    Encode,
    /// Datagram exceeded the transport's frame limit (UDP).
    Oversize,
    /// Fault injection decided the link loses this message.
    Fault,
    /// The destination (or source) node was crashed.
    Crashed,
    /// A bounded queue (TCP writer, node inbox) was full and shed load.
    QueueFull,
    /// Lost in a reconnect window: the peer link was down and frames queued
    /// for it could not be delivered.
    Reconnect,
    /// No route/address known for the destination.
    NoRoute,
    /// A reactor connection's bounded write buffer was full and the frame
    /// was shed (the readiness-loop analogue of [`DropCause::QueueFull`]).
    Backpressure,
    /// A loss path that failed to name its cause — must stay zero.
    Unexplained,
}

impl DropCause {
    /// Every cause, in snapshot order.
    pub const ALL: [DropCause; 9] = [
        DropCause::Encode,
        DropCause::Oversize,
        DropCause::Fault,
        DropCause::Crashed,
        DropCause::QueueFull,
        DropCause::Reconnect,
        DropCause::NoRoute,
        DropCause::Backpressure,
        DropCause::Unexplained,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Encode => "encode",
            DropCause::Oversize => "oversize",
            DropCause::Fault => "fault",
            DropCause::Crashed => "crashed",
            DropCause::QueueFull => "queue_full",
            DropCause::Reconnect => "reconnect",
            DropCause::NoRoute => "no_route",
            DropCause::Backpressure => "backpressure",
            DropCause::Unexplained => "unexplained",
        }
    }
}

/// High-water-mark gauges: `record` keeps the maximum ever observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Gauge {
    /// Deepest the node's event/inbox queue ever got.
    QueueDepthHwm,
    /// Largest command batch ever packed into one slot/message.
    BatchHwm,
    /// Most transport connections ever simultaneously open on the node.
    ConnsHwm,
}

impl Gauge {
    /// Every gauge, in snapshot order.
    pub const ALL: [Gauge; 3] = [Gauge::QueueDepthHwm, Gauge::BatchHwm, Gauge::ConnsHwm];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepthHwm => "queue_depth_hwm",
            Gauge::BatchHwm => "batch_hwm",
            Gauge::ConnsHwm => "conns_hwm",
        }
    }
}

/// Per-replica metrics: typed counters, drop causes, high-water gauges, and
/// per-message-type sent/received breakdowns.
///
/// All additions saturate. Per-type maps are `BTreeMap` so iteration (and
/// therefore serialization) order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: Vec<u64>,
    drops: Vec<u64>,
    gauges: Vec<u64>,
    sent_by_type: BTreeMap<String, u64>,
    recv_by_type: BTreeMap<String, u64>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An all-zero registry. The only allocations the registry ever makes
    /// are here (three fixed-size arrays) and on the first sighting of each
    /// message-type name.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: vec![0; Metric::ALL.len()],
            drops: vec![0; DropCause::ALL.len()],
            gauges: vec![0; Gauge::ALL.len()],
            sent_by_type: BTreeMap::new(),
            recv_by_type: BTreeMap::new(),
        }
    }

    /// Adds `n` to `metric`, saturating at `u64::MAX`.
    pub fn add(&mut self, metric: Metric, n: u64) {
        let c = &mut self.counters[metric as usize];
        *c = c.saturating_add(n);
    }

    /// Records `n` dropped messages under `cause`, saturating.
    pub fn add_drop(&mut self, cause: DropCause, n: u64) {
        let c = &mut self.drops[cause as usize];
        *c = c.saturating_add(n);
    }

    /// Raises `gauge` to `v` if `v` is a new high-water mark.
    pub fn gauge_max(&mut self, gauge: Gauge, v: u64) {
        let g = &mut self.gauges[gauge as usize];
        *g = (*g).max(v);
    }

    /// Counts one sent message of type `kind` (also bumps
    /// [`Metric::MsgsSent`]).
    pub fn sent(&mut self, kind: &str, n: u64) {
        self.add(Metric::MsgsSent, n);
        bump(&mut self.sent_by_type, kind, n);
    }

    /// Counts one received message of type `kind` (also bumps
    /// [`Metric::MsgsReceived`]).
    pub fn received(&mut self, kind: &str, n: u64) {
        self.add(Metric::MsgsReceived, n);
        bump(&mut self.recv_by_type, kind, n);
    }

    /// Current value of `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// Current drop count under `cause`.
    pub fn drops(&self, cause: DropCause) -> u64 {
        self.drops[cause as usize]
    }

    /// Sum of drops across all causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().fold(0u64, |a, d| a.saturating_add(*d))
    }

    /// Current high-water mark of `gauge`.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Messages of type `kind` sent so far.
    pub fn sent_of(&self, kind: &str) -> u64 {
        self.sent_by_type.get(kind).copied().unwrap_or(0)
    }

    /// Messages of type `kind` received so far.
    pub fn recv_of(&self, kind: &str) -> u64 {
        self.recv_by_type.get(kind).copied().unwrap_or(0)
    }

    /// Iterates `(type, count)` over the sent-by-type breakdown.
    pub fn sent_types(&self) -> impl Iterator<Item = (&str, u64)> {
        self.sent_by_type.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates `(type, count)` over the received-by-type breakdown.
    pub fn recv_types(&self) -> impl Iterator<Item = (&str, u64)> {
        self.recv_by_type.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds `other` into `self`: counters and per-type maps add
    /// (saturating), gauges take the max. Used to aggregate per-group or
    /// per-thread registries into one node-level snapshot.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.drops.iter_mut().zip(&other.drops) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = (*a).max(*b);
        }
        for (k, v) in &other.sent_by_type {
            bump(&mut self.sent_by_type, k, *v);
        }
        for (k, v) in &other.recv_by_type {
            bump(&mut self.recv_by_type, k, *v);
        }
    }

    /// Renders the registry as one deterministic JSON object: fixed key
    /// order (declaration order for counters/drops/gauges, lexicographic
    /// for the per-type maps), no whitespace dependence on content.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"counters\":{");
        for (i, m) in Metric::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", m.name(), self.get(*m)));
        }
        s.push_str("},\"drops\":{");
        for (i, c) in DropCause::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", c.name(), self.drops(*c)));
        }
        s.push_str("},\"gauges\":{");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", g.name(), self.gauge(*g)));
        }
        s.push_str("},\"sent_by_type\":{");
        for (i, (k, v)) in self.sent_types().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"recv_by_type\":{");
        for (i, (k, v)) in self.recv_types().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("}}");
        s
    }
}

fn bump(map: &mut BTreeMap<String, u64>, kind: &str, n: u64) {
    if let Some(v) = map.get_mut(kind) {
        *v = v.saturating_add(n);
    } else {
        map.insert(kind.to_owned(), n);
    }
}

/// A stage in a client request's life, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceStage {
    /// The request entered the system (runtime dispatched it to a replica).
    Submit,
    /// A leader (or command leader) proposed it into a slot/instance.
    Propose,
    /// The proposal reached its quorum.
    QuorumAck,
    /// The command executed against the state machine.
    Execute,
    /// The reply left for the client.
    Reply,
}

impl TraceStage {
    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Submit => "submit",
            TraceStage::Propose => "propose",
            TraceStage::QuorumAck => "quorum_ack",
            TraceStage::Execute => "execute",
            TraceStage::Reply => "reply",
        }
    }
}

/// One request-lifecycle trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When the stage was reached (virtual or wall-relative time).
    pub at: Nanos,
    /// The node that observed the stage.
    pub node: NodeId,
    /// The request being traced.
    pub req: RequestId,
    /// Which lifecycle stage.
    pub stage: TraceStage,
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s: the newest `capacity`
/// events survive, older ones are overwritten. `total` keeps counting so a
/// reader knows how much history the ring has shed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    head: usize,
    total: u64,
    cap: usize,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (`capacity == 0` records
    /// nothing but still counts `total`).
    pub fn new(capacity: usize) -> Self {
        let buf = Vec::with_capacity(capacity.min(1 << 20));
        TraceRing {
            buf,
            head: 0,
            total: 0,
            cap: capacity,
        }
    }

    /// Appends one event, overwriting the oldest once full.
    pub fn push(&mut self, ev: TraceEvent) {
        self.total = self.total.saturating_add(1);
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// One node's metrics, labeled with its id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The node the registry belongs to.
    pub node: NodeId,
    /// Its accumulated metrics.
    pub metrics: MetricsRegistry,
}

/// Metrics for a whole cluster: one snapshot per node, in node order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ClusterMetrics {
    /// Per-node snapshots.
    pub nodes: Vec<MetricsSnapshot>,
}

impl ClusterMetrics {
    /// Total drops across all nodes that no known cause explains — the
    /// quantity chaos digests and CI assert is zero.
    pub fn unexplained_drops(&self) -> u64 {
        self.nodes.iter().fold(0u64, |a, s| {
            a.saturating_add(s.metrics.drops(DropCause::Unexplained))
        })
    }

    /// All per-node registries folded into one.
    pub fn merged(&self) -> MetricsRegistry {
        let mut all = MetricsRegistry::new();
        for s in &self.nodes {
            all.merge(&s.metrics);
        }
        all
    }

    /// Deterministic JSON: per-node objects in node order plus the
    /// cluster-wide unexplained-drop total.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"nodes\":[");
        for (i, snap) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let metrics = snap.metrics.to_json();
            s.push_str(&format!(
                "{{\"node\":\"{}\",\"metrics\":{}}}",
                snap.node, metrics
            ));
        }
        s.push_str(&format!(
            "],\"unexplained_drops\":{}}}",
            self.unexplained_drops()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut r = MetricsRegistry::new();
        r.add(Metric::MsgsSent, u64::MAX - 1);
        r.add(Metric::MsgsSent, 5);
        assert_eq!(r.get(Metric::MsgsSent), u64::MAX);
        r.add_drop(DropCause::Fault, u64::MAX);
        r.add_drop(DropCause::Fault, 1);
        assert_eq!(r.drops(DropCause::Fault), u64::MAX);
    }

    #[test]
    fn typed_counts_feed_the_totals() {
        let mut r = MetricsRegistry::new();
        r.sent("p2a", 2);
        r.sent("commit", 1);
        r.received("p2b", 2);
        assert_eq!(r.get(Metric::MsgsSent), 3);
        assert_eq!(r.get(Metric::MsgsReceived), 2);
        assert_eq!(r.sent_of("p2a"), 2);
        assert_eq!(r.recv_of("p2b"), 2);
        assert_eq!(r.sent_of("unknown"), 0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsRegistry::new();
        a.sent("p2a", 3);
        a.gauge_max(Gauge::QueueDepthHwm, 7);
        let mut b = MetricsRegistry::new();
        b.sent("p2a", 2);
        b.received("p2a", 4);
        b.gauge_max(Gauge::QueueDepthHwm, 5);
        a.merge(&b);
        assert_eq!(a.sent_of("p2a"), 5);
        assert_eq!(a.get(Metric::MsgsSent), 5);
        assert_eq!(a.recv_of("p2a"), 4);
        assert_eq!(a.gauge(Gauge::QueueDepthHwm), 7);
    }

    #[test]
    fn trace_ring_keeps_newest_and_counts_total() {
        let node = NodeId::new(0, 0);
        let mut ring = TraceRing::new(3);
        for seq in 0..5u64 {
            ring.push(TraceEvent {
                at: Nanos(seq),
                node,
                req: RequestId::new(crate::id::ClientId(1), seq),
                stage: TraceStage::Submit,
            });
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 3);
        let ats: Vec<u64> = ring.iter().map(|e| e.at.0).collect();
        assert_eq!(
            ats,
            vec![2, 3, 4],
            "oldest events overwritten, order preserved"
        );
    }

    #[test]
    fn json_is_deterministic_and_names_every_key() {
        let mut r = MetricsRegistry::new();
        r.sent("p2a", 1);
        r.received("p1b", 2);
        r.add_drop(DropCause::Encode, 3);
        let a = r.to_json();
        let b = r.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"msgs_sent\":1"));
        assert!(a.contains("\"encode\":3"));
        assert!(a.contains("\"p2a\":1"));
        assert!(a.contains("\"p1b\":2"));
    }
}
