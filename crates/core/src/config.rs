//! Cluster configuration.
//!
//! A [`ClusterConfig`] describes the deployment every protocol runs in: how
//! many zones (regions), how many nodes per zone, and the fault-tolerance
//! parameters `f` (node crashes tolerated inside a zone) and `fz` (full-zone
//! failures tolerated) that WPaxos-style flexible grid quorums are built
//! from. It is the Rust analogue of Paxi's JSON configuration file.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Static description of a cluster deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of zones (regions / failure domains).
    pub zones: u8,
    /// Nodes in each zone.
    pub per_zone: u8,
    /// Node-failure tolerance within a zone (used by grid quorums).
    pub f: u8,
    /// Zone-failure tolerance (used by grid quorums).
    pub fz: u8,
}

impl ClusterConfig {
    /// A LAN-style deployment: one zone of `n` nodes.
    pub fn lan(n: u8) -> Self {
        ClusterConfig { zones: 1, per_zone: n, f: n / 2, fz: 0 }
    }

    /// A WAN-style grid deployment of `zones × per_zone` nodes with node
    /// fault-tolerance `f` and zone fault-tolerance `fz`.
    pub fn wan(zones: u8, per_zone: u8, f: u8, fz: u8) -> Self {
        assert!(zones > 0 && per_zone > 0);
        assert!(f < per_zone, "f must be < per_zone");
        assert!(fz < zones, "fz must be < zones");
        ClusterConfig { zones, per_zone, f, fz }
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.zones as usize * self.per_zone as usize
    }

    /// All node ids, zone-major.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.n());
        for z in 0..self.zones {
            for i in 0..self.per_zone {
                v.push(NodeId::new(z, i));
            }
        }
        v
    }

    /// Node ids of one zone.
    pub fn zone_nodes(&self, zone: u8) -> Vec<NodeId> {
        (0..self.per_zone).map(|i| NodeId::new(zone, i)).collect()
    }

    /// Whether `id` belongs to this cluster.
    pub fn contains(&self, id: NodeId) -> bool {
        id.zone < self.zones && id.node < self.per_zone
    }

    /// Dense index of a node in [`ClusterConfig::all_nodes`] order.
    pub fn index_of(&self, id: NodeId) -> usize {
        id.zone as usize * self.per_zone as usize + id.node as usize
    }

    /// Majority quorum size over the whole cluster.
    pub fn majority(&self) -> usize {
        crate::quorum::majority(self.n())
    }

    /// The "first" node, conventionally the initial leader for single-leader
    /// protocols.
    pub fn initial_leader(&self) -> NodeId {
        NodeId::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_config_is_single_zone() {
        let c = ClusterConfig::lan(9);
        assert_eq!(c.n(), 9);
        assert_eq!(c.majority(), 5);
        assert_eq!(c.all_nodes().len(), 9);
        assert!(c.all_nodes().iter().all(|n| n.zone == 0));
    }

    #[test]
    fn wan_grid_enumeration_is_zone_major() {
        let c = ClusterConfig::wan(3, 3, 1, 0);
        let nodes = c.all_nodes();
        assert_eq!(nodes.len(), 9);
        assert_eq!(nodes[0], NodeId::new(0, 0));
        assert_eq!(nodes[3], NodeId::new(1, 0));
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(c.index_of(*n), i);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let c = ClusterConfig::wan(2, 3, 1, 0);
        assert!(c.contains(NodeId::new(1, 2)));
        assert!(!c.contains(NodeId::new(2, 0)));
        assert!(!c.contains(NodeId::new(0, 3)));
    }

    #[test]
    #[should_panic]
    fn wan_rejects_f_equal_per_zone() {
        ClusterConfig::wan(3, 3, 3, 0);
    }
}
