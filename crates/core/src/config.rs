//! Cluster configuration.
//!
//! A [`ClusterConfig`] describes the deployment every protocol runs in: how
//! many zones (regions), how many nodes per zone, and the fault-tolerance
//! parameters `f` (node crashes tolerated inside a zone) and `fz` (full-zone
//! failures tolerated) that WPaxos-style flexible grid quorums are built
//! from. It is the Rust analogue of Paxi's JSON configuration file.

use crate::id::NodeId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Command-batching knobs for leader-based protocols.
///
/// A leader with batching enabled accumulates incoming client commands and
/// commits them as one slot / log-entry batch: one round of messages, one
/// WAL append, and one fsync amortized over `max_batch` commands — the
/// classic lever for relieving the single-leader bottleneck the paper's §3
/// cost model identifies. `batch_delay` bounds how long the first command in
/// a partial batch waits before the leader flushes anyway, so batching
/// trades at most that much latency for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Maximum commands per slot/entry batch. `1` disables batching and is
    /// behaviorally identical to the unbatched protocol (same messages, same
    /// timers, same WAL records).
    pub max_batch: usize,
    /// Hold-down: how long a partial batch may wait for more commands before
    /// the leader flushes it. Irrelevant when `max_batch == 1`.
    pub batch_delay: Nanos,
}

impl Default for BatchConfig {
    /// Batching off: one command per slot, exactly today's behavior.
    fn default() -> Self {
        BatchConfig {
            max_batch: 1,
            batch_delay: Nanos::micros(200),
        }
    }
}

impl BatchConfig {
    /// Batching enabled with batch size `max_batch` and the default
    /// 200 µs hold-down.
    pub fn of(max_batch: usize) -> Self {
        BatchConfig {
            max_batch: max_batch.max(1),
            ..Self::default()
        }
    }

    /// Whether batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

/// Static description of a cluster deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of zones (regions / failure domains).
    pub zones: u8,
    /// Nodes in each zone.
    pub per_zone: u8,
    /// Node-failure tolerance within a zone (used by grid quorums).
    pub f: u8,
    /// Zone-failure tolerance (used by grid quorums).
    pub fz: u8,
}

impl ClusterConfig {
    /// A LAN-style deployment: one zone of `n` nodes.
    pub fn lan(n: u8) -> Self {
        ClusterConfig {
            zones: 1,
            per_zone: n,
            f: n / 2,
            fz: 0,
        }
    }

    /// A WAN-style grid deployment of `zones × per_zone` nodes with node
    /// fault-tolerance `f` and zone fault-tolerance `fz`.
    pub fn wan(zones: u8, per_zone: u8, f: u8, fz: u8) -> Self {
        assert!(zones > 0 && per_zone > 0);
        assert!(f < per_zone, "f must be < per_zone");
        assert!(fz < zones, "fz must be < zones");
        ClusterConfig {
            zones,
            per_zone,
            f,
            fz,
        }
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.zones as usize * self.per_zone as usize
    }

    /// All node ids, zone-major.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.n());
        for z in 0..self.zones {
            for i in 0..self.per_zone {
                v.push(NodeId::new(z, i));
            }
        }
        v
    }

    /// Node ids of one zone.
    pub fn zone_nodes(&self, zone: u8) -> Vec<NodeId> {
        (0..self.per_zone).map(|i| NodeId::new(zone, i)).collect()
    }

    /// Whether `id` belongs to this cluster.
    pub fn contains(&self, id: NodeId) -> bool {
        id.zone < self.zones && id.node < self.per_zone
    }

    /// Dense index of a node in [`ClusterConfig::all_nodes`] order.
    pub fn index_of(&self, id: NodeId) -> usize {
        id.zone as usize * self.per_zone as usize + id.node as usize
    }

    /// Majority quorum size over the whole cluster.
    pub fn majority(&self) -> usize {
        crate::quorum::majority(self.n())
    }

    /// The "first" node, conventionally the initial leader for single-leader
    /// protocols.
    pub fn initial_leader(&self) -> NodeId {
        NodeId::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_config_is_single_zone() {
        let c = ClusterConfig::lan(9);
        assert_eq!(c.n(), 9);
        assert_eq!(c.majority(), 5);
        assert_eq!(c.all_nodes().len(), 9);
        assert!(c.all_nodes().iter().all(|n| n.zone == 0));
    }

    #[test]
    fn wan_grid_enumeration_is_zone_major() {
        let c = ClusterConfig::wan(3, 3, 1, 0);
        let nodes = c.all_nodes();
        assert_eq!(nodes.len(), 9);
        assert_eq!(nodes[0], NodeId::new(0, 0));
        assert_eq!(nodes[3], NodeId::new(1, 0));
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(c.index_of(*n), i);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let c = ClusterConfig::wan(2, 3, 1, 0);
        assert!(c.contains(NodeId::new(1, 2)));
        assert!(!c.contains(NodeId::new(2, 0)));
        assert!(!c.contains(NodeId::new(0, 3)));
    }

    #[test]
    #[should_panic]
    fn wan_rejects_f_equal_per_zone() {
        ClusterConfig::wan(3, 3, 3, 0);
    }

    #[test]
    fn batching_defaults_off_and_clamps_to_one() {
        let d = BatchConfig::default();
        assert_eq!(d.max_batch, 1);
        assert!(!d.enabled());
        assert!(BatchConfig::of(16).enabled());
        assert_eq!(BatchConfig::of(0).max_batch, 1);
    }
}
