//! The protocol abstraction.
//!
//! Paxi's central observation is that strongly-consistent replication
//! protocols share all their scaffolding — networking, message dispatch,
//! quorums, the datastore — and differ only in their message types and
//! replica logic. Mirroring the Go framework, a protocol author implements
//! exactly two things: a message enum and a [`Replica`] with event handlers.
//! Everything else (the deterministic simulator in `paxi-sim`, the threaded
//! and socket runtimes in `paxi-transport`, the benchmarker in `paxi-bench`)
//! is generic over this trait.
//!
//! Handlers receive a [`Context`] through which they send messages, set
//! timers, and reply to clients. The same replica code runs unchanged under
//! virtual time and wall-clock time.

use crate::command::{ClientRequest, ClientResponse};
use crate::id::NodeId;
use crate::time::Nanos;
use paxi_storage::Storage;
use std::fmt;

/// Capabilities the runtime exposes to a replica while it handles an event.
///
/// All side effects of a handler flow through its context; replicas never
/// touch sockets or clocks directly. This is what makes the simulator
/// deterministic and the protocols transport-agnostic.
pub trait Context<M> {
    /// This replica's id.
    fn id(&self) -> NodeId;
    /// Current (virtual or wall-clock) time.
    fn now(&self) -> Nanos;
    /// Sends `msg` to one peer. Sending to self is delivered like any other
    /// message (after processing costs, without network latency in the sim).
    fn send(&mut self, to: NodeId, msg: M);
    /// Sends `msg` to every peer except self. The simulator charges the CPU
    /// serialization cost once for a broadcast, per the paper's model.
    fn broadcast(&mut self, msg: M);
    /// Sends `msg` to an explicit set of peers (thrifty messaging).
    fn multicast(&mut self, to: &[NodeId], msg: M);
    /// Arms a timer that fires `after` from now, delivering `kind` to
    /// [`Replica::on_timer`]. Returns a token; a replica that re-arms a
    /// logical timer can ignore fires whose token is stale.
    fn set_timer(&mut self, after: Nanos, kind: u64) -> u64;
    /// Completes a client request previously delivered via
    /// [`Replica::on_request`].
    fn reply(&mut self, resp: ClientResponse);
    /// Forwards a client request to another replica (e.g. a follower
    /// redirecting to the leader). The target observes it as its own
    /// [`Replica::on_request`] and replies directly to the client.
    fn forward(&mut self, to: NodeId, req: ClientRequest);
    /// Deterministic (in the simulator) source of randomness, e.g. for
    /// randomized election timeouts.
    fn rand_u64(&mut self) -> u64;
    /// Adds `n` to a typed observability counter (see [`crate::obs`]).
    /// Runtimes with metrics enabled route this into the node's
    /// [`crate::obs::MetricsRegistry`]; the default is a no-op so existing
    /// contexts and disabled runs pay nothing.
    fn count(&mut self, metric: crate::obs::Metric, n: u64) {
        let _ = (metric, n);
    }
    /// Records `n` dropped messages under a [`crate::obs::DropCause`].
    /// Default no-op, as for [`Context::count`].
    fn count_drop(&mut self, cause: crate::obs::DropCause, n: u64) {
        let _ = (cause, n);
    }
    /// Records a request-lifecycle trace event (see
    /// [`crate::obs::TraceStage`]). Protocols call this at their propose /
    /// quorum-ack / execute points; runtimes record submit and reply
    /// themselves. Default no-op.
    fn trace(&mut self, stage: crate::obs::TraceStage, req: crate::id::RequestId) {
        let _ = (stage, req);
    }
}

/// A replication-protocol replica: a deterministic state machine driven by
/// messages, client requests, and timers.
pub trait Replica {
    /// The protocol's wire message type.
    type Msg: Clone + fmt::Debug + Send + 'static;

    /// Called once when the node starts, before any other event.
    fn on_start(&mut self, _ctx: &mut dyn Context<Self::Msg>) {}

    /// Called when the node recovers after a crash window (fault
    /// injection). While crashed, every event addressed to the node —
    /// messages, client requests, timers — was silently discarded, so any
    /// timer the replica had armed is gone; this hook lets it re-arm timers
    /// and rejoin the protocol from its retained state (the recovered-state
    /// model: state survives, volatile schedules don't). The default re-runs
    /// [`Replica::on_start`], which is correct for protocols whose start
    /// logic is idempotent modulo ballots (a restarted leader re-runs
    /// phase-1 with a higher ballot, a follower re-arms its election timer).
    fn on_restart(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.on_start(ctx);
    }

    /// Gives the replica a durable store for its acceptor-critical state.
    ///
    /// Protocols that support crash-recovery keep the handle, append WAL
    /// records at their persist-before-ack points, and — right here, before
    /// returning — replay whatever the store already holds (snapshot + WAL)
    /// into their in-memory state. Attaching therefore doubles as the pure
    /// state-rebuild step of recovery: factories call it while constructing
    /// a replica, so a rebuilt-after-amnesia replica comes up already
    /// recovered. The default drops the handle (protocol keeps no durable
    /// state).
    fn attach_storage(&mut self, storage: Box<dyn Storage>) {
        let _ = storage;
    }

    /// Called after an amnesia crash, on the *rebuilt* replica (fresh from
    /// the factory, state already restored via [`Replica::attach_storage`]).
    /// Unlike `attach_storage` this hook has a [`Context`], so it is the
    /// place for effects: re-arming timers, re-executing recovered commands,
    /// re-joining the protocol. The default defers to
    /// [`Replica::on_restart`].
    fn on_recover(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.on_restart(ctx);
    }

    /// Periodic storage-maintenance tick, driven by wall-clock runtimes
    /// between events: replicas holding a WAL forward it to
    /// [`Storage::tick`], so a batch fsync policy's time bound is honored
    /// even when no append arrives to piggyback the check on. The default
    /// does nothing (no durable state, or a backend without a wall clock).
    fn sync_storage(&mut self) {}

    /// Handles one protocol message from peer `from`.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>);

    /// Handles one client request delivered to this replica.
    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<Self::Msg>);

    /// Handles a timer armed with [`Context::set_timer`]. `token` is the
    /// value returned when the timer was armed.
    fn on_timer(&mut self, _kind: u64, _token: u64, _ctx: &mut dyn Context<Self::Msg>) {}

    /// Hint for the runtime's accounting: a human-readable protocol name.
    fn protocol_name(&self) -> &'static str {
        "unnamed"
    }

    /// How many client commands `msg` carries, for cost accounting.
    ///
    /// Protocols that batch commands into one wire message (a multi-command
    /// `P2a`, a multi-entry `AppendEntries`) report the batch width here so
    /// the simulator's cost model can charge the per-command marginal terms
    /// on top of the per-message fixed terms — the amortization the paper's
    /// §3 model predicts. Messages that carry no commands (acks, heartbeats,
    /// phase-1 traffic) count as weight 1: they cost exactly one message's
    /// worth of work. The default (weight 1 for everything) leaves unbatched
    /// protocols' accounting bit-identical to before this hook existed.
    fn msg_cmds(_msg: &Self::Msg) -> u64 {
        1
    }

    /// A stable, human-readable name for `msg`'s wire type ("p2a",
    /// "append_entries", …), used by the observability layer to break
    /// sent/received counters down per message type — the granularity the
    /// paper's per-commit message-complexity audit needs. The default lumps
    /// everything under `"msg"`, which keeps totals correct for protocols
    /// that don't override it.
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }

    /// The replica's state machine, if it exposes one. The consensus checker
    /// collects stores from all replicas and verifies their per-key histories
    /// share a common prefix.
    fn store(&self) -> Option<&crate::store::MultiVersionStore> {
        None
    }

    /// Who this replica currently believes serves client requests — the
    /// redirect surface. Leader-based protocols return their leader hint
    /// (possibly themselves); leaderless protocols return their own id
    /// (any replica serves); the default `None` means the replica offers no
    /// routing information. The sharded runtime uses this to answer
    /// wrong-leader requests with [`ClientResponse::redirected`] instead of
    /// forwarding, so smart clients learn group placement.
    fn leader_hint(&self) -> Option<NodeId> {
        None
    }

    /// The node's current view of the voting membership (all voters of the
    /// active configuration, joint sets unioned), if the protocol supports
    /// dynamic membership. Wall-clock runtimes poll this after each event
    /// to add or remove live peer links when a reconfiguration activates.
    /// The default `None` means membership is static for this protocol and
    /// the runtime keeps its startup peer set.
    fn current_members(&self) -> Option<Vec<NodeId>> {
        None
    }

    /// The replica's shard-migration tracker, if the protocol applies
    /// replicated [`crate::migration::MigrationRecord`]s at execute time.
    /// The sharded runtime polls this after each event to drive pending
    /// hand-offs and fold committed ones into its routing table. The
    /// default `None` means the protocol does not participate in shard
    /// migration.
    fn migration(&self) -> Option<&crate::migration::MigrationTracker> {
        None
    }
}

/// A constructor for a homogeneous cluster of replicas — the runtimes use
/// this to instantiate one replica per node id.
pub trait ReplicaFactory {
    /// The replica type this factory builds.
    type R: Replica;
    /// Builds the replica for node `id`.
    fn make(&self, id: NodeId) -> Self::R;
}

impl<R: Replica, F: Fn(NodeId) -> R> ReplicaFactory for F {
    type R = R;
    fn make(&self, id: NodeId) -> R {
        self(id)
    }
}
