//! Fault injection primitives shared by the simulator and the live
//! transports.
//!
//! Paxi exposes four fault-injection commands realized inside the networking
//! module — `Crash(t)`, `Drop(i, j, t)`, `Slow(i, j, t)`, and `Flaky(i, j,
//! t)` — so availability experiments don't need OS-level tooling like Jepsen
//! or Chaos Monkey. One [`FaultPlan`] describes a schedule of such faults;
//! the discrete-event simulator (`paxi-sim`) queries it under virtual time
//! and the wall-clock transports (`paxi-transport`) query it under real
//! time, so the exact same plan drives both worlds.
//!
//! Semantics:
//! * **Crash** takes a node down for an interval: events addressed to it
//!   (messages, requests, timers) are silently discarded while down. What
//!   happens at recovery depends on the [`CrashMode`]:
//!   [`CrashMode::Freeze`] retains in-memory state and delivers a restart
//!   event ([`crate::traits::Replica::on_restart`]) so the node re-arms
//!   timers and rejoins; [`CrashMode::Amnesia`] discards *all* volatile
//!   state — the runtime rebuilds the replica from its factory, which must
//!   recover from durable storage (`paxi-storage`), and then delivers
//!   [`crate::traits::Replica::on_recover`].
//! * **Drop** discards every message from `i` to `j` during the interval.
//! * **Slow** adds a random extra delay (uniform in `[0, max_delay)`) to
//!   messages from `i` to `j`.
//! * **Flaky** drops each message from `i` to `j` independently with
//!   probability `p` (clamped into `[0, 1]`).

use crate::dist::Rng64;
use crate::id::NodeId;
use crate::time::Nanos;

/// A half-open time interval `[from, until)` during which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    from: Nanos,
    until: Nanos,
}

impl FaultWindow {
    /// A window starting at `at` and lasting `duration` (saturating).
    pub fn new(at: Nanos, duration: Nanos) -> Self {
        FaultWindow {
            from: at,
            until: Nanos(at.0.saturating_add(duration.0)),
        }
    }

    /// An open-ended window: active from `at` until the end of the run (or
    /// until a later [`FaultPlan::heal`] truncates it).
    pub fn until_end(at: Nanos) -> Self {
        FaultWindow {
            from: at,
            until: Nanos(u64::MAX),
        }
    }

    /// A window aimed at a reconfiguration's cut-over: it opens the instant
    /// the config change is submitted (`reconfig_at`) and spans the
    /// `transition` interval during which the cluster is in its joint /
    /// pre-activation configuration. Nemesis suites use this to land
    /// crashes precisely inside the membership transition — the regime
    /// where "The Performance of Paxos in the Cloud" observes cloud
    /// deployments losing availability.
    pub fn during_reconfig(reconfig_at: Nanos, transition: Nanos) -> Self {
        FaultWindow::new(reconfig_at, transition)
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Nanos) -> bool {
        t >= self.from && t < self.until
    }

    /// Start of the window.
    pub fn start(&self) -> Nanos {
        self.from
    }

    /// Exclusive end of the window (`u64::MAX` when open-ended).
    pub fn end(&self) -> Nanos {
        self.until
    }

    /// Whether the window runs to the end of time.
    pub fn is_open_ended(&self) -> bool {
        self.until.0 == u64::MAX
    }

    fn truncate(&mut self, at: Nanos) {
        if self.contains(at) {
            self.until = at;
        }
    }
}

/// What a crashed node loses while it is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// The process stalls but keeps its memory: recovery resumes from the
    /// retained in-memory state (PR 1's original crash semantics).
    #[default]
    Freeze,
    /// The machine dies: every byte of volatile state is lost. Recovery
    /// rebuilds the replica from its factory and replays durable storage —
    /// anything not persisted before the crash is gone.
    Amnesia,
}

impl CrashMode {
    /// Short label for schedules and logs.
    pub fn label(&self) -> &'static str {
        match self {
            CrashMode::Freeze => "freeze",
            CrashMode::Amnesia => "amnesia",
        }
    }
}

#[derive(Debug, Clone)]
struct LinkRule {
    src: NodeId,
    dst: NodeId,
    window: FaultWindow,
    kind: LinkFault,
}

#[derive(Debug, Clone)]
enum LinkFault {
    Drop,
    Flaky { p: f64 },
    Slow { max_delay: Nanos },
}

/// What the fault plan decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Deliver, possibly with extra delay.
    Deliver {
        /// Extra delay injected by a `Slow` rule.
        extra_delay: Nanos,
    },
    /// Discard the message.
    Dropped,
}

/// A schedule of injected faults, queried at message-delivery time by the
/// simulator and by the transport-level
/// fault injector.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<(NodeId, FaultWindow, CrashMode)>,
    links: Vec<LinkRule>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes `node` from `at` for `duration` ([`CrashMode::Freeze`]).
    pub fn crash(&mut self, node: NodeId, at: Nanos, duration: Nanos) -> &mut Self {
        self.crash_in(node, FaultWindow::new(at, duration))
    }

    /// Freezes `node` for an explicit window (use
    /// [`FaultWindow::until_end`] for an open-ended crash).
    pub fn crash_in(&mut self, node: NodeId, window: FaultWindow) -> &mut Self {
        self.crash_mode_in(node, window, CrashMode::Freeze)
    }

    /// Amnesia-crashes `node` from `at` for `duration`: at recovery the
    /// replica is rebuilt from scratch and must replay durable storage.
    pub fn crash_amnesia(&mut self, node: NodeId, at: Nanos, duration: Nanos) -> &mut Self {
        self.crash_mode_in(node, FaultWindow::new(at, duration), CrashMode::Amnesia)
    }

    /// Crashes `node` for an explicit window with an explicit mode.
    pub fn crash_mode_in(
        &mut self,
        node: NodeId,
        window: FaultWindow,
        mode: CrashMode,
    ) -> &mut Self {
        self.crashes.push((node, window, mode));
        self
    }

    /// Drops all messages `src → dst` in the window.
    pub fn drop_link(&mut self, src: NodeId, dst: NodeId, at: Nanos, duration: Nanos) -> &mut Self {
        self.drop_link_in(src, dst, FaultWindow::new(at, duration))
    }

    /// Drops all messages `src → dst` for an explicit window.
    pub fn drop_link_in(&mut self, src: NodeId, dst: NodeId, window: FaultWindow) -> &mut Self {
        self.links.push(LinkRule {
            src,
            dst,
            window,
            kind: LinkFault::Drop,
        });
        self
    }

    /// Drops each message `src → dst` with probability `p` in the window.
    /// `p` is clamped into `[0, 1]` (NaN becomes 0).
    pub fn flaky_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        p: f64,
        at: Nanos,
        duration: Nanos,
    ) -> &mut Self {
        self.flaky_link_in(src, dst, p, FaultWindow::new(at, duration))
    }

    /// Drops each message `src → dst` with probability `p` (clamped into
    /// `[0, 1]`) for an explicit window.
    pub fn flaky_link_in(
        &mut self,
        src: NodeId,
        dst: NodeId,
        p: f64,
        window: FaultWindow,
    ) -> &mut Self {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.links.push(LinkRule {
            src,
            dst,
            window,
            kind: LinkFault::Flaky { p },
        });
        self
    }

    /// Adds up to `max_delay` of random extra latency on `src → dst`.
    pub fn slow_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        max_delay: Nanos,
        at: Nanos,
        duration: Nanos,
    ) -> &mut Self {
        self.slow_link_in(src, dst, max_delay, FaultWindow::new(at, duration))
    }

    /// Adds up to `max_delay` of random extra latency on `src → dst` for an
    /// explicit window.
    pub fn slow_link_in(
        &mut self,
        src: NodeId,
        dst: NodeId,
        max_delay: Nanos,
        window: FaultWindow,
    ) -> &mut Self {
        self.links.push(LinkRule {
            src,
            dst,
            window,
            kind: LinkFault::Slow { max_delay },
        });
        self
    }

    /// Symmetric partition: drops all traffic between every node of `a` and
    /// every node of `b`, both directions, in the window.
    pub fn partition(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        at: Nanos,
        duration: Nanos,
    ) -> &mut Self {
        self.partition_in(a, b, FaultWindow::new(at, duration))
    }

    /// Symmetric partition for an explicit window.
    pub fn partition_in(&mut self, a: &[NodeId], b: &[NodeId], window: FaultWindow) -> &mut Self {
        for &x in a {
            for &y in b {
                self.drop_link_in(x, y, window);
                self.drop_link_in(y, x, window);
            }
        }
        self
    }

    /// Ends every window still active at `at` — crashed nodes recover and
    /// all link faults lift. Windows that already ended, or that only start
    /// after `at`, are untouched.
    pub fn heal(&mut self, at: Nanos) -> &mut Self {
        for (_, w, _) in self.crashes.iter_mut() {
            w.truncate(at);
        }
        for rule in self.links.iter_mut() {
            rule.window.truncate(at);
        }
        self
    }

    /// Whether `node` is down at time `t`.
    pub fn is_crashed(&self, node: NodeId, t: Nanos) -> bool {
        self.crashes
            .iter()
            .any(|(n, w, _)| *n == node && w.contains(t))
    }

    /// The mode of the crash window covering `node` at `t`, if any.
    pub fn crash_mode_at(&self, node: NodeId, t: Nanos) -> Option<CrashMode> {
        self.crashes
            .iter()
            .find(|(n, w, _)| *n == node && w.contains(t))
            .map(|(_, _, mode)| *mode)
    }

    /// Every `(node, recovery_time, mode)` triple at which a crashed node
    /// comes back. Open-ended crashes never recover and are not reported.
    /// Runtimes use this to schedule restart events
    /// ([`crate::traits::Replica::on_restart`] for [`CrashMode::Freeze`],
    /// the rebuild-plus-[`crate::traits::Replica::on_recover`] path for
    /// [`CrashMode::Amnesia`]).
    pub fn recoveries(&self) -> impl Iterator<Item = (NodeId, Nanos, CrashMode)> + '_ {
        self.crashes
            .iter()
            .filter(|(_, w, _)| !w.is_open_ended())
            .map(|(n, w, mode)| (*n, w.end(), *mode))
    }

    /// Decides the fate of a message sent `src → dst` at time `t`.
    pub fn message_fate(&self, src: NodeId, dst: NodeId, t: Nanos, rng: &mut Rng64) -> MsgFate {
        let mut extra = Nanos::ZERO;
        for rule in &self.links {
            if rule.src != src || rule.dst != dst || !rule.window.contains(t) {
                continue;
            }
            match rule.kind {
                LinkFault::Drop => return MsgFate::Dropped,
                LinkFault::Flaky { p } => {
                    if rng.chance(p) {
                        return MsgFate::Dropped;
                    }
                }
                LinkFault::Slow { max_delay } => {
                    extra += Nanos(rng.below(max_delay.0.max(1)));
                }
            }
        }
        MsgFate::Deliver { extra_delay: extra }
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(z: u8, i: u8) -> NodeId {
        NodeId::new(z, i)
    }

    #[test]
    fn crash_window_is_half_open() {
        let mut p = FaultPlan::new();
        p.crash(n(0, 0), Nanos::secs(1), Nanos::secs(2));
        assert!(!p.is_crashed(n(0, 0), Nanos::millis(999)));
        assert!(p.is_crashed(n(0, 0), Nanos::secs(1)));
        assert!(p.is_crashed(n(0, 0), Nanos::millis(2_999)));
        assert!(!p.is_crashed(n(0, 0), Nanos::secs(3)));
        assert!(
            !p.is_crashed(n(0, 1), Nanos::secs(2)),
            "other nodes unaffected"
        );
    }

    #[test]
    fn drop_is_directional() {
        let mut p = FaultPlan::new();
        p.drop_link(n(0, 0), n(0, 1), Nanos::ZERO, Nanos::secs(10));
        let mut rng = Rng64::seed(1);
        assert_eq!(
            p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng),
            MsgFate::Dropped
        );
        assert_eq!(
            p.message_fate(n(0, 1), n(0, 0), Nanos::secs(1), &mut rng),
            MsgFate::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
    }

    #[test]
    fn flaky_drops_roughly_p_fraction() {
        let mut p = FaultPlan::new();
        p.flaky_link(n(0, 0), n(0, 1), 0.3, Nanos::ZERO, Nanos::secs(100));
        let mut rng = Rng64::seed(9);
        let mut dropped = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng) == MsgFate::Dropped {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {}", frac);
    }

    #[test]
    fn flaky_probability_is_clamped() {
        let mut p = FaultPlan::new();
        p.flaky_link(n(0, 0), n(0, 1), 7.5, Nanos::ZERO, Nanos::secs(10));
        p.flaky_link(n(0, 1), n(0, 0), -3.0, Nanos::ZERO, Nanos::secs(10));
        p.flaky_link(n(0, 0), n(0, 2), f64::NAN, Nanos::ZERO, Nanos::secs(10));
        let mut rng = Rng64::seed(4);
        // p > 1 clamps to certain drop.
        for _ in 0..100 {
            assert_eq!(
                p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng),
                MsgFate::Dropped
            );
        }
        // p < 0 and NaN clamp to never-drop.
        for _ in 0..100 {
            assert_eq!(
                p.message_fate(n(0, 1), n(0, 0), Nanos::secs(1), &mut rng),
                MsgFate::Deliver {
                    extra_delay: Nanos::ZERO
                }
            );
            assert_eq!(
                p.message_fate(n(0, 0), n(0, 2), Nanos::secs(1), &mut rng),
                MsgFate::Deliver {
                    extra_delay: Nanos::ZERO
                }
            );
        }
    }

    #[test]
    fn slow_adds_bounded_delay() {
        let mut p = FaultPlan::new();
        p.slow_link(
            n(0, 0),
            n(0, 1),
            Nanos::millis(5),
            Nanos::ZERO,
            Nanos::secs(100),
        );
        let mut rng = Rng64::seed(2);
        for _ in 0..1000 {
            match p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng) {
                MsgFate::Deliver { extra_delay } => assert!(extra_delay < Nanos::millis(5)),
                MsgFate::Dropped => panic!("slow must not drop"),
            }
        }
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut p = FaultPlan::new();
        p.partition(&[n(0, 0)], &[n(1, 0), n(1, 1)], Nanos::ZERO, Nanos::secs(5));
        let mut rng = Rng64::seed(3);
        for (a, b) in [(n(0, 0), n(1, 0)), (n(1, 0), n(0, 0)), (n(0, 0), n(1, 1))] {
            assert_eq!(
                p.message_fate(a, b, Nanos::secs(1), &mut rng),
                MsgFate::Dropped
            );
        }
        // Unrelated pair unaffected.
        assert_eq!(
            p.message_fate(n(1, 0), n(1, 1), Nanos::secs(1), &mut rng),
            MsgFate::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
        // After the window traffic flows again.
        assert_eq!(
            p.message_fate(n(0, 0), n(1, 0), Nanos::secs(6), &mut rng),
            MsgFate::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
    }

    #[test]
    fn until_end_windows_never_expire_without_heal() {
        let mut p = FaultPlan::new();
        p.crash_in(n(0, 0), FaultWindow::until_end(Nanos::secs(1)));
        p.drop_link_in(n(0, 1), n(0, 2), FaultWindow::until_end(Nanos::ZERO));
        assert!(p.is_crashed(n(0, 0), Nanos::secs(1_000_000)));
        let mut rng = Rng64::seed(5);
        assert_eq!(
            p.message_fate(n(0, 1), n(0, 2), Nanos::secs(1_000_000), &mut rng),
            MsgFate::Dropped
        );
        // Open-ended crashes report no recovery point.
        assert_eq!(p.recoveries().count(), 0);
    }

    #[test]
    fn heal_ends_active_windows_only() {
        let mut p = FaultPlan::new();
        // Active at heal time.
        p.crash_in(n(0, 0), FaultWindow::until_end(Nanos::secs(1)));
        p.drop_link(n(0, 1), n(0, 2), Nanos::ZERO, Nanos::secs(100));
        // Already over at heal time.
        p.crash(n(0, 1), Nanos::ZERO, Nanos::secs(1));
        // Starts after heal time: untouched.
        p.drop_link(n(0, 2), n(0, 1), Nanos::secs(10), Nanos::secs(10));
        p.heal(Nanos::secs(5));
        assert!(!p.is_crashed(n(0, 0), Nanos::secs(5)));
        assert!(p.is_crashed(n(0, 0), Nanos::millis(4_999)));
        let mut rng = Rng64::seed(6);
        assert_eq!(
            p.message_fate(n(0, 1), n(0, 2), Nanos::secs(6), &mut rng),
            MsgFate::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
        // The future window still applies.
        assert_eq!(
            p.message_fate(n(0, 2), n(0, 1), Nanos::secs(11), &mut rng),
            MsgFate::Dropped
        );
        // Healed crash now has a recovery point at the heal instant.
        assert!(p
            .recoveries()
            .any(|(node, at, _)| node == n(0, 0) && at == Nanos::secs(5)));
    }

    #[test]
    fn recoveries_report_crash_window_ends() {
        let mut p = FaultPlan::new();
        p.crash(n(0, 0), Nanos::secs(1), Nanos::secs(2));
        p.crash(n(0, 1), Nanos::secs(4), Nanos::secs(1));
        let rec: Vec<_> = p.recoveries().collect();
        assert_eq!(
            rec,
            vec![
                (n(0, 0), Nanos::secs(3), CrashMode::Freeze),
                (n(0, 1), Nanos::secs(5), CrashMode::Freeze)
            ]
        );
    }

    #[test]
    fn amnesia_crashes_carry_their_mode() {
        let mut p = FaultPlan::new();
        p.crash(n(0, 0), Nanos::secs(1), Nanos::secs(1));
        p.crash_amnesia(n(0, 1), Nanos::secs(2), Nanos::secs(2));
        assert_eq!(
            p.crash_mode_at(n(0, 0), Nanos::millis(1_500)),
            Some(CrashMode::Freeze)
        );
        assert_eq!(
            p.crash_mode_at(n(0, 1), Nanos::secs(3)),
            Some(CrashMode::Amnesia)
        );
        assert_eq!(
            p.crash_mode_at(n(0, 1), Nanos::secs(5)),
            None,
            "after the window"
        );
        let rec: Vec<_> = p.recoveries().collect();
        assert!(rec.contains(&(n(0, 1), Nanos::secs(4), CrashMode::Amnesia)));
        // Both modes freeze delivery identically while down.
        assert!(p.is_crashed(n(0, 1), Nanos::secs(3)));
    }
}
