//! Latency histograms and throughput meters.
//!
//! The benchmarker stores the latency of every individual request; to keep
//! that cheap we use an HDR-style log-linear histogram: values are bucketed
//! by order of magnitude with a fixed number of sub-buckets per octave, which
//! bounds the relative quantization error while using O(1) memory per
//! recording. Percentiles, means, and full CDFs (for the paper's Figure 13b)
//! are derived from the bucket counts — the bench latency path never keeps
//! (or sorts) the raw sample vector, so memory stays bounded at any
//! simulated throughput. The sort-everything reference implementation
//! survives only under `#[cfg(test)]`, where it cross-checks the bucketed
//! quantiles.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Sub-bucket precision: 2^7 = 128 sub-buckets per octave, i.e. < 0.8%
/// relative error on reported quantiles.
const PRECISION_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS;

/// Log-linear latency histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // Octave = position of the highest set bit above the precision range.
    let octave = 63 - v.leading_zeros() as u64 - PRECISION_BITS as u64;
    let mantissa = (v >> octave) - SUB_BUCKETS; // 0..SUB_BUCKETS
    (SUB_BUCKETS + octave * SUB_BUCKETS + mantissa) as usize
}

fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let octave = (idx - SUB_BUCKETS) / SUB_BUCKETS;
    let mantissa = (idx - SUB_BUCKETS) % SUB_BUCKETS;
    (SUB_BUCKETS + mantissa) << octave
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, v: Nanos) {
        let v = v.0;
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample, exact (derived from the running sum, not the buckets).
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        Nanos((self.sum / self.total as u128) as u64)
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos(self.min)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        Nanos(self.max)
    }

    /// Quantile `q ∈ [0, 1]`, reported as the lower bound of the bucket that
    /// contains it (clamped to the recorded min/max).
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Nanos(bucket_low(idx).clamp(self.min, self.max));
            }
        }
        Nanos(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Nanos {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Nanos {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The empirical CDF as `(latency, cumulative_fraction)` points, one per
    /// non-empty bucket — what Figure 13b of the paper plots.
    pub fn cdf(&self) -> Vec<(Nanos, f64)> {
        let mut pts = Vec::new();
        if self.total == 0 {
            return pts;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            pts.push((Nanos(bucket_low(idx)), seen as f64 / self.total as f64));
        }
        pts
    }
}

/// Summary statistics extracted from a [`Histogram`], convenient for tables.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean latency.
    pub mean: Nanos,
    /// Median latency.
    pub p50: Nanos,
    /// 99th-percentile latency.
    pub p99: Nanos,
    /// Minimum.
    pub min: Nanos,
    /// Maximum.
    pub max: Nanos,
}

impl From<&Histogram> for LatencySummary {
    fn from(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.p50(),
            p99: h.p99(),
            min: h.min(),
            max: h.max(),
        }
    }
}

/// Counts events over a known interval to report a rate.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Meter {
    events: u64,
}

impl Meter {
    /// New meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` events.
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second over `window`.
    pub fn rate(&self, window: Nanos) -> f64 {
        if window == Nanos::ZERO {
            return 0.0;
        }
        self.events as f64 / window.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired implementation: keep every sample, sort, index. Exact,
    /// but O(n) memory and O(n log n) per report — kept only to cross-check
    /// the bucketed quantiles.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn bucketed_quantiles_cross_check_the_sorted_vec_path() {
        // A spread of magnitudes (1µs .. ~1s) drawn from a seeded LCG; the
        // histogram must agree with the full-sort reference within bucket
        // resolution (<1% relative) at every quantile we report.
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..100_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1_000 + (x >> 34) % 1_000_000_000;
            h.record(Nanos(v));
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.10, 0.50, 0.90, 0.99, 0.999] {
            let exact = exact_quantile(&samples, q) as f64;
            let bucketed = h.quantile(q).0 as f64;
            let err = (bucketed - exact).abs() / exact;
            assert!(
                err < 0.01,
                "q={q}: bucketed {bucketed} vs exact {exact} (err {err})"
            );
        }
    }

    #[test]
    fn memory_stays_bounded_regardless_of_sample_count() {
        // 64 octaves x 128 sub-buckets is the absolute ceiling of the bucket
        // array; the raw-sample path this replaced grew linearly.
        let mut h = Histogram::new();
        let mut x = 7u64;
        for _ in 0..200_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            h.record(Nanos(1 + (x >> 24) % 10_000_000_000));
        }
        assert_eq!(h.count(), 200_000);
        assert!(
            h.counts.len() <= (64 + 1) * SUB_BUCKETS as usize,
            "bucket array grew past its ceiling: {}",
            h.counts.len()
        );
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 127] {
            h.record(Nanos(v));
        }
        assert_eq!(h.min(), Nanos(1));
        assert_eq!(h.max(), Nanos(127));
        assert_eq!(h.count(), 5);
        assert_eq!(h.quantile(0.0), Nanos(1));
        assert_eq!(h.quantile(1.0), Nanos(127));
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(Nanos::micros(v));
        }
        let p50 = h.p50().0 as f64;
        let exact = Nanos::micros(5_000).0 as f64;
        assert!(
            (p50 - exact).abs() / exact < 0.01,
            "p50 {} vs {}",
            p50,
            exact
        );
        let p99 = h.p99().0 as f64;
        let exact99 = Nanos::micros(9_900).0 as f64;
        assert!((p99 - exact99).abs() / exact99 < 0.01);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Nanos(10));
        h.record(Nanos(20));
        h.record(Nanos(60));
        assert_eq!(h.mean(), Nanos(30));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos::millis(1));
        b.record(Nanos::millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Nanos::millis(2));
        assert_eq!(a.max(), Nanos::millis(3));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            h.record(Nanos::micros(v));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meter_rate() {
        let mut m = Meter::new();
        m.add(500);
        assert_eq!(m.rate(Nanos::secs(2)), 250.0);
        assert_eq!(m.rate(Nanos::ZERO), 0.0);
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        // bucket_low(bucket_index(v)) <= v for a wide range of magnitudes,
        // and the relative error stays under 1%.
        for shift in 0..50u64 {
            let v = (1u64 << shift) + (1 << shift) / 3;
            let low = bucket_low(bucket_index(v));
            assert!(low <= v);
            let err = (v - low) as f64 / v as f64;
            assert!(err < 0.01, "v={} low={} err={}", v, low, err);
        }
    }
}
