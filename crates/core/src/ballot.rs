//! Ballot numbers.
//!
//! A ballot is the round identifier of Paxos-family protocols. It orders
//! competing leadership attempts: a node accepts a proposal only if it has
//! not promised a higher ballot. Ballots must be totally ordered and unique
//! per proposer, which we achieve by pairing a monotonically increasing
//! counter with the proposer's [`NodeId`] as the tie breaker.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Paxos ballot: `(counter, proposer)`, compared counter-major.
///
/// `Ballot::default()` (counter 0) is smaller than every ballot produced by
/// [`Ballot::first`] / [`Ballot::next`], so it can serve as "no promise yet".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ballot {
    /// Monotonically increasing round counter.
    pub counter: u32,
    /// The node that owns this ballot; breaks ties between concurrent rounds.
    pub id: NodeId,
}

impl Ballot {
    /// The smallest real ballot a node can propose.
    pub const fn first(id: NodeId) -> Self {
        Ballot { counter: 1, id }
    }

    /// The next ballot owned by `id` that is strictly greater than `self`.
    ///
    /// Used after a preemption: a proposer that saw a higher ballot `b`
    /// calls `b.next(my_id)` to outbid it.
    pub const fn next(self, id: NodeId) -> Self {
        Ballot {
            counter: self.counter + 1,
            id,
        }
    }

    /// Whether this is the zero ballot (no round started).
    pub const fn is_zero(self) -> bool {
        self.counter == 0
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}@{}", self.counter, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ballot_is_smallest() {
        let b = Ballot::first(NodeId::new(0, 0));
        assert!(Ballot::default() < b);
        assert!(Ballot::default().is_zero());
        assert!(!b.is_zero());
    }

    #[test]
    fn next_outbids_any_seen_ballot() {
        let a = NodeId::new(0, 1);
        let b = NodeId::new(2, 0);
        let seen = Ballot { counter: 7, id: b };
        let mine = seen.next(a);
        assert!(mine > seen);
        assert_eq!(mine.id, a);
    }

    #[test]
    fn counter_major_ordering() {
        let lo = Ballot {
            counter: 1,
            id: NodeId::new(9, 9),
        };
        let hi = Ballot {
            counter: 2,
            id: NodeId::new(0, 0),
        };
        assert!(lo < hi);
        // Same counter: node id breaks the tie.
        let x = Ballot {
            counter: 2,
            id: NodeId::new(0, 1),
        };
        assert!(hi < x);
    }
}
