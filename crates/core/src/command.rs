//! Commands, client requests, and responses.
//!
//! All protocols in this framework replicate a log (or a per-object log, or a
//! dependency graph) of [`Command`]s against the in-memory key-value state
//! machine in [`crate::store`]. A command targets one key and is either a
//! read (`Get`) or a write (`Put`). Two commands *interfere* when they touch
//! the same key and at least one of them writes — the interference relation
//! drives EPaxos dependency tracking and defines the "conflict" workload
//! parameter `c` of the paper.

use crate::group::GroupId;
use crate::id::{NodeId, RequestId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Keys are dense integers; the benchmark draws them from `0..K` using one of
/// the workload distributions (uniform / normal / zipfian / exponential).
pub type Key = u64;

/// Opaque value bytes.
pub type Value = Vec<u8>;

/// The operation part of a command.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read the current version of the key.
    Get,
    /// Install a new version of the key.
    Put(Value),
    /// Remove the key (records a tombstone version).
    Delete,
}

impl Op {
    /// Whether this operation mutates state.
    pub fn is_write(&self) -> bool {
        !matches!(self, Op::Get)
    }
}

/// A state-machine command: one operation against one key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// Target key.
    pub key: Key,
    /// Operation to apply.
    pub op: Op,
}

impl Command {
    /// Read command.
    pub fn get(key: Key) -> Self {
        Command { key, op: Op::Get }
    }

    /// Write command.
    pub fn put(key: Key, value: Value) -> Self {
        Command {
            key,
            op: Op::Put(value),
        }
    }

    /// Delete command.
    pub fn delete(key: Key) -> Self {
        Command {
            key,
            op: Op::Delete,
        }
    }

    /// Whether the command writes.
    pub fn is_write(&self) -> bool {
        self.op.is_write()
    }

    /// EPaxos-style interference relation: same key, not both reads.
    ///
    /// Non-interfering commands may be committed on the fast path in any
    /// relative order; interfering commands must be ordered by the protocol.
    pub fn interferes(&self, other: &Command) -> bool {
        self.key == other.key && (self.is_write() || other.is_write())
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            Op::Get => write!(f, "GET {}", self.key),
            Op::Put(v) => write!(f, "PUT {} ({}B)", self.key, v.len()),
            Op::Delete => write!(f, "DEL {}", self.key),
        }
    }
}

/// A client request as delivered to a replica by the runtime.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientRequest {
    /// Unique id used to route the response back to the issuing client.
    pub id: RequestId,
    /// The command to replicate and execute.
    pub cmd: Command,
}

/// The reply a replica produces once a command is committed and executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientResponse {
    /// Echoes the request id.
    pub id: RequestId,
    /// `Get` returns the read value (or `None` if absent); `Put`/`Delete`
    /// return the previous value, mirroring Paxi's key-value store API.
    pub value: Option<Value>,
    /// False when the protocol rejected the request (e.g. redirected).
    pub ok: bool,
    /// On rejection, where the client should retry: the node the replica
    /// believes leads the request's consensus group. Smart clients (the
    /// sharded `ShardRouter`) cache this hint per group and re-issue the
    /// command there; `None` means the replica has no better idea and the
    /// client should fall back to probing.
    pub redirect: Option<NodeId>,
    /// Set when the request's key range was handed off to another consensus
    /// group by a committed shard migration: the authoritative new routing
    /// for the range, tagged with the routing epoch that installed it.
    /// Routers adopt the override (if its epoch beats their cache) and
    /// re-issue the command at the new owner.
    pub handoff: Option<Handoff>,
}

/// An epoch-tagged range-ownership override carried on rejection responses
/// after a shard migration commits: keys in `[lo, hi)` now belong to
/// `group`, as of routing epoch `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Handoff {
    /// Inclusive lower bound of the moved range.
    pub lo: Key,
    /// Exclusive upper bound of the moved range.
    pub hi: Key,
    /// The range's new owning group.
    pub group: GroupId,
    /// Routing epoch that installed the override (higher wins).
    pub epoch: u64,
}

impl ClientResponse {
    /// Successful response carrying `value`.
    pub fn ok(id: RequestId, value: Option<Value>) -> Self {
        ClientResponse {
            id,
            value,
            ok: true,
            redirect: None,
            handoff: None,
        }
    }

    /// Failure/rejection response.
    pub fn err(id: RequestId) -> Self {
        ClientResponse {
            id,
            value: None,
            ok: false,
            redirect: None,
            handoff: None,
        }
    }

    /// Wrong-leader rejection pointing the client at `leader`.
    pub fn redirected(id: RequestId, leader: NodeId) -> Self {
        ClientResponse {
            id,
            value: None,
            ok: false,
            redirect: Some(leader),
            handoff: None,
        }
    }

    /// Rejection because the key's range was migrated away: the client
    /// should follow `handoff` to the range's new owning group.
    pub fn handed_off(id: RequestId, handoff: Handoff) -> Self {
        ClientResponse {
            id,
            value: None,
            ok: false,
            redirect: None,
            handoff: Some(handoff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_requires_a_writer() {
        let r1 = Command::get(5);
        let r2 = Command::get(5);
        let w = Command::put(5, vec![1]);
        let w_other = Command::put(6, vec![1]);
        assert!(!r1.interferes(&r2), "two reads never interfere");
        assert!(r1.interferes(&w));
        assert!(w.interferes(&r1), "interference is symmetric");
        assert!(w.interferes(&w.clone()));
        assert!(!w.interferes(&w_other), "different keys never interfere");
    }

    #[test]
    fn delete_counts_as_write() {
        assert!(Command::delete(1).is_write());
        assert!(Command::delete(1).interferes(&Command::get(1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Command::get(3).to_string(), "GET 3");
        assert_eq!(Command::put(3, vec![0; 16]).to_string(), "PUT 3 (16B)");
        assert_eq!(Command::delete(9).to_string(), "DEL 9");
    }
}
