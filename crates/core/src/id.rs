//! Node, client, and request identifiers.
//!
//! Paxi addresses every node with a two-level `zone.node` id, where the zone
//! corresponds to a failure/latency domain (an availability zone in a LAN
//! deployment, a geographic region in a WAN deployment). Several protocols in
//! this crate family are zone-aware: WPaxos arranges its flexible grid
//! quorums over zones, WanKeeper runs one Paxos group per zone, and VPaxos
//! assigns object leadership to zone-local groups.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica: `zone.node`.
///
/// Ordering is lexicographic on `(zone, node)` which gives every node a
/// stable total order — ballots use this order to break ties between
/// competing leaders.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId {
    /// Failure/latency domain (region) of the node.
    pub zone: u8,
    /// Index of the node within its zone.
    pub node: u8,
}

impl NodeId {
    /// Creates a node id from a zone and an in-zone index.
    pub const fn new(zone: u8, node: u8) -> Self {
        NodeId { zone, node }
    }

    /// Packs the id into a dense `u16`, useful for array indexing.
    pub const fn pack(self) -> u16 {
        ((self.zone as u16) << 8) | self.node as u16
    }

    /// Inverse of [`NodeId::pack`].
    pub const fn unpack(v: u16) -> Self {
        NodeId {
            zone: (v >> 8) as u8,
            node: (v & 0xff) as u8,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.zone, self.node)
    }
}

/// Identifier of a client session. Clients are not replicas; they attach to
/// one node (usually in their own zone) and issue requests through it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique identifier of one client request: the issuing client plus
/// a per-client sequence number. Protocols carry the `RequestId` through
/// their message flow so the runtime can route the eventual response back to
/// the waiting client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId {
    /// The client that issued the request.
    pub client: ClientId,
    /// Strictly increasing per-client sequence number.
    pub seq: u64,
}

impl RequestId {
    /// Creates a request id.
    pub const fn new(client: ClientId, seq: u64) -> Self {
        RequestId { client, seq }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_uses_zone_dot_node() {
        assert_eq!(NodeId::new(2, 5).to_string(), "2.5");
    }

    #[test]
    fn node_id_pack_roundtrip() {
        for zone in [0u8, 1, 7, 255] {
            for node in [0u8, 3, 254, 255] {
                let id = NodeId::new(zone, node);
                assert_eq!(NodeId::unpack(id.pack()), id);
            }
        }
    }

    #[test]
    fn node_id_order_is_zone_major() {
        assert!(NodeId::new(0, 200) < NodeId::new(1, 0));
        assert!(NodeId::new(1, 1) < NodeId::new(1, 2));
    }

    #[test]
    fn request_id_display() {
        let r = RequestId::new(ClientId(3), 42);
        assert_eq!(r.to_string(), "c3#42");
    }
}
