//! Deterministic random number generation and the workload/latency
//! distributions used throughout the framework.
//!
//! The simulator must be bit-for-bit reproducible from a seed, so we carry
//! our own small PRNG (xoshiro256++, seeded via splitmix64) instead of
//! depending on `rand`'s version-dependent `StdRng` stream, and implement the
//! samplers the paper needs: Uniform, Normal (Box–Muller — the paper models
//! LAN RTTs as Normal, Figure 3), Exponential, and Zipfian (benchmark key
//! popularity, Table 3).

use serde::{Deserialize, Serialize};

/// xoshiro256++ PRNG. Fast, high quality, trivially seedable, and — unlike
/// external crates — guaranteed stable across builds of this repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Seeds the generator deterministically from one word.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (tiny bias acceptable for
        // workload generation; not used for cryptography).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard-normal sample via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        // Reject u1 == 0 to keep ln finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let mut u = self.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = self.next_f64();
        }
        -u.ln() / rate
    }

    /// Forks an independent deterministic stream (used to give every node and
    /// client its own generator while keeping global determinism).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed(self.next_u64())
    }
}

/// The key-popularity distributions the benchmarker supports (paper Table 3
/// and Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key in `[min, min+k)` equally likely.
    Uniform,
    /// Normal popularity centered at `mu` with deviation `sigma`, clamped to
    /// the key space. `mu` varies per region to create access locality.
    Normal {
        /// Center of the popular-key region.
        mu: f64,
        /// Spread of the popular-key region.
        sigma: f64,
    },
    /// Zipfian popularity `P(k) ∝ 1/(v+k)^s`.
    Zipfian {
        /// Skew exponent `s`.
        s: f64,
        /// Shift parameter `v` (must be ≥ 1 so rank 0 is defined).
        v: f64,
    },
    /// Exponential popularity `P(k) ∝ exp(-rate·k)`.
    Exponential {
        /// Decay rate across the key space.
        rate: f64,
    },
}

/// Samples keys in `[0, k)` from a [`KeyDist`].
///
/// Zipfian and Exponential use a precomputed cumulative table with binary
/// search; Normal clamps Box–Muller samples into range.
#[derive(Debug, Clone)]
pub struct KeySampler {
    k: u64,
    dist: KeyDist,
    cdf: Vec<f64>,
}

impl KeySampler {
    /// Builds a sampler over `k` keys.
    pub fn new(k: u64, dist: KeyDist) -> Self {
        assert!(k > 0, "key space must be nonempty");
        let cdf = match &dist {
            KeyDist::Zipfian { s, v } => {
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(k as usize);
                for i in 0..k {
                    acc += 1.0 / (v + i as f64).powf(*s);
                    cdf.push(acc);
                }
                for c in cdf.iter_mut() {
                    *c /= acc;
                }
                cdf
            }
            KeyDist::Exponential { rate } => {
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(k as usize);
                for i in 0..k {
                    acc += (-rate * i as f64).exp();
                    cdf.push(acc);
                }
                for c in cdf.iter_mut() {
                    *c /= acc;
                }
                cdf
            }
            _ => Vec::new(),
        };
        KeySampler { k, dist, cdf }
    }

    /// Number of keys.
    pub fn key_space(&self) -> u64 {
        self.k
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        match &self.dist {
            KeyDist::Uniform => rng.below(self.k),
            KeyDist::Normal { mu, sigma } => {
                let v = rng.normal(*mu, *sigma).round();
                let v = v.rem_euclid(self.k as f64);
                (v as u64).min(self.k - 1)
            }
            KeyDist::Zipfian { .. } | KeyDist::Exponential { .. } => {
                let u = rng.next_f64();
                match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                    Ok(i) => i as u64,
                    Err(i) => (i as u64).min(self.k - 1),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_from_seed() {
        let mut a = Rng64::seed(42);
        let mut b = Rng64::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng64::seed(1);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = Rng64::seed(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {}", c);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::seed(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = r.normal(0.4271, 0.0476);
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.4271).abs() < 0.001, "mean {}", mean);
        assert!((var.sqrt() - 0.0476).abs() < 0.001, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng64::seed(13);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += r.exponential(4.0);
        }
        assert!((sum / n as f64 - 0.25).abs() < 0.01);
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let s = KeySampler::new(1000, KeyDist::Zipfian { s: 2.0, v: 1.0 });
        let mut r = Rng64::seed(17);
        let mut zero = 0;
        let n = 50_000;
        for _ in 0..n {
            if s.sample(&mut r) == 0 {
                zero += 1;
            }
        }
        // With s=2, v=1 the rank-0 mass is 1/zeta-ish ~ 0.61.
        let frac = zero as f64 / n as f64;
        assert!(frac > 0.5, "rank-0 fraction {}", frac);
    }

    #[test]
    fn normal_keys_cluster_around_mu() {
        let s = KeySampler::new(
            1000,
            KeyDist::Normal {
                mu: 500.0,
                sigma: 60.0,
            },
        );
        let mut r = Rng64::seed(19);
        let mut near = 0;
        let n = 20_000;
        for _ in 0..n {
            let k = s.sample(&mut r);
            if (380..=620).contains(&k) {
                near += 1;
            }
        }
        assert!(near as f64 / n as f64 > 0.9);
    }

    #[test]
    fn uniform_keys_cover_space() {
        let s = KeySampler::new(8, KeyDist::Uniform);
        let mut r = Rng64::seed(23);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(s.sample(&mut r));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = Rng64::seed(5);
        let mut b = a.fork();
        let mut c = a.fork();
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
