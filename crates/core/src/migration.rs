//! Elastic shard migration: crash-safe hand-off of a key range between
//! consensus groups.
//!
//! The sharded runtime (`paxi-shard`) statically partitions the keyspace;
//! this module supplies the replicated vocabulary that lets ownership of a
//! key range *move* between groups at run time without losing
//! linearizability — the WPaxos observation that key ownership can itself
//! be an object decided through consensus. A migration is three records,
//! each riding an ordinary group log:
//!
//! 1. [`MigrationRecord::Start`] commits in the **source** group's log.
//!    From the moment it executes, the range is *frozen*: every data
//!    command on a frozen key is deterministically rejected at execute
//!    time (never applied), so the range's contents stop changing at a
//!    well-defined log position on every replica.
//! 2. [`MigrationRecord::Install`] commits in the **destination** group's
//!    log, carrying the frozen range's multi-version state. Because the
//!    range is frozen, any source replica that has executed `Start`
//!    extracts bit-identical state — two competing drivers (a deposed and
//!    a new source leader) propose byte-equal installs, and the tracker
//!    deduplicates by migration id anyway.
//! 3. [`MigrationRecord::Commit`] commits in **both** logs (one record per
//!    [`CommitHalf`]). The source half drops the range from the source
//!    store and switches its rejections from "retry later" to an
//!    epoch-tagged hand-off pointing at the destination; the destination
//!    half bumps the group's routing epoch.
//!
//! Safety argument: the source serves the range only *before* its `Start`
//! executes; the destination serves it only *after* its `Install`
//! executes; `Install` is only proposed once `Start` committed. The two
//! serve windows are therefore disjoint on every interleaving — never
//! dual-ownership — and because all three records are ordinary log
//! commands persisted and replayed by the existing WAL machinery, a crash
//! (freeze or amnesia) of any role at any phase recovers the tracker to
//! exactly the state the log prescribes: exactly one owner, never a lost
//! range (an acknowledged write is either below `Start` and thus inside
//! the streamed state, or was rejected and never acknowledged).
//!
//! Like [`crate::membership`], the encodings are hand-rolled behind
//! one-byte tags and decoding **never panics** — wrong tag, truncation,
//! and trailing garbage all return `None`, and the command is then treated
//! as an ordinary (never store-executed) write to the reserved key.

use crate::command::{Command, Key, Op};
use crate::group::GroupId;
use crate::store::{StoreDump, Version};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Reserved key carrying migration payloads through the replicated logs.
///
/// One below [`crate::membership::CONFIG_KEY`]; workloads draw keys from
/// `0..K`, so neither reserved key can collide with application data.
/// Protocols never execute commands on this key against the store — the
/// "state" they mutate is the [`MigrationTracker`], applied at execute
/// time so freezes and cut-overs replay deterministically.
pub const MIGRATION_KEY: Key = Key::MAX - 1;

const TAG_START: u8 = 0xD1;
const TAG_INSTALL: u8 = 0xD2;
const TAG_COMMIT: u8 = 0xD3;
const TAG_TRACKER: u8 = 0xD4;

/// A half-open key range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: Key,
    /// Exclusive upper bound.
    pub hi: Key,
}

impl KeyRange {
    /// The range `[lo, hi)`.
    pub fn new(lo: Key, hi: Key) -> Self {
        KeyRange { lo, hi }
    }

    /// Whether `key` falls inside the range.
    pub fn contains(&self, key: Key) -> bool {
        key >= self.lo && key < self.hi
    }

    /// Whether the range contains no keys.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// The immutable description of one migration, embedded in every record of
/// it: which range moves, from which group to which, and the routing epoch
/// the completed hand-off installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationSpec {
    /// Unique id of the migration (deduplicates re-proposed records).
    pub id: u64,
    /// The group giving the range up.
    pub from: GroupId,
    /// The group receiving the range.
    pub to: GroupId,
    /// The key range changing owner.
    pub range: KeyRange,
    /// The routing epoch the commit installs (must exceed the epoch the
    /// migration was planned under for routers to adopt the override).
    pub epoch: u64,
}

impl MigrationSpec {
    /// Whether the spec describes a real hand-off: a non-empty range moving
    /// between two *different* groups. Trackers ignore invalid specs
    /// entirely, so a malformed or adversarial record can never freeze a
    /// range it could not also hand off.
    pub fn is_valid(&self) -> bool {
        self.from != self.to && !self.range.is_empty()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.from.0.to_le_bytes());
        out.extend_from_slice(&self.to.0.to_le_bytes());
        out.extend_from_slice(&self.range.lo.to_le_bytes());
        out.extend_from_slice(&self.range.hi.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
    }

    fn decode_from(rest: &mut &[u8]) -> Option<Self> {
        let id = decode_u64(rest)?;
        let from = GroupId(decode_u32(rest)?);
        let to = GroupId(decode_u32(rest)?);
        let lo = decode_u64(rest)?;
        let hi = decode_u64(rest)?;
        let epoch = decode_u64(rest)?;
        Some(MigrationSpec {
            id,
            from,
            to,
            range: KeyRange::new(lo, hi),
            epoch,
        })
    }
}

impl fmt::Display for MigrationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migration#{} {} {}→{} e{}",
            self.id, self.range, self.from, self.to, self.epoch
        )
    }
}

/// Which group's log a [`MigrationRecord::Commit`] rides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitHalf {
    /// The source group's commit: drop the range, hand off routing.
    Source,
    /// The destination group's commit: adopt the range, bump the epoch.
    Dest,
}

/// One replicated step of a migration. Records ride group logs as ordinary
/// writes to [`MIGRATION_KEY`] and are applied to each replica's
/// [`MigrationTracker`] at execute time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MigrationRecord {
    /// Phase 1, source log: freeze the range.
    Start(MigrationSpec),
    /// Phase 2, destination log: install the frozen range state (the
    /// encoded [`StoreDump`] produced by [`encode_range_state`]).
    Install {
        /// The migration this install belongs to.
        spec: MigrationSpec,
        /// Encoded multi-version state of the frozen range.
        state: Vec<u8>,
    },
    /// Phase 3, both logs: finish the hand-off on one side.
    Commit {
        /// The migration being committed.
        spec: MigrationSpec,
        /// Which side's log this record rides.
        half: CommitHalf,
    },
}

impl MigrationRecord {
    /// The spec common to every record shape.
    pub fn spec(&self) -> &MigrationSpec {
        match self {
            MigrationRecord::Start(spec)
            | MigrationRecord::Install { spec, .. }
            | MigrationRecord::Commit { spec, .. } => spec,
        }
    }

    /// The group whose log this record must ride — what the sharded
    /// runtime routes the carrying command to.
    pub fn target_group(&self) -> GroupId {
        match self {
            MigrationRecord::Start(spec) => spec.from,
            MigrationRecord::Install { spec, .. } => spec.to,
            MigrationRecord::Commit { spec, half } => match half {
                CommitHalf::Source => spec.from,
                CommitHalf::Dest => spec.to,
            },
        }
    }

    /// Encodes the record as a self-describing byte payload (tags `0xD1`
    /// start / `0xD2` install / `0xD3` commit).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            MigrationRecord::Start(spec) => {
                let mut out = vec![TAG_START];
                spec.encode_into(&mut out);
                out
            }
            MigrationRecord::Install { spec, state } => {
                let mut out = vec![TAG_INSTALL];
                spec.encode_into(&mut out);
                let n = state.len().min(u32::MAX as usize) as u32;
                out.extend_from_slice(&n.to_le_bytes());
                out.extend_from_slice(&state[..n as usize]);
                out
            }
            MigrationRecord::Commit { spec, half } => {
                let mut out = vec![TAG_COMMIT];
                spec.encode_into(&mut out);
                out.push(match half {
                    CommitHalf::Source => 0,
                    CommitHalf::Dest => 1,
                });
                out
            }
        }
    }

    /// Decodes a payload produced by [`MigrationRecord::encode`]. Returns
    /// `None` (never panics) on wrong tag, truncation, or trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, mut rest) = bytes.split_first()?;
        let spec = MigrationSpec::decode_from(&mut rest)?;
        let rec = match tag {
            TAG_START => MigrationRecord::Start(spec),
            TAG_INSTALL => {
                let n = decode_u32(&mut rest)? as usize;
                if rest.len() < n {
                    return None;
                }
                let state = rest[..n].to_vec();
                rest = &rest[n..];
                MigrationRecord::Install { spec, state }
            }
            TAG_COMMIT => {
                let (&h, r) = rest.split_first()?;
                rest = r;
                let half = match h {
                    0 => CommitHalf::Source,
                    1 => CommitHalf::Dest,
                    _ => return None,
                };
                MigrationRecord::Commit { spec, half }
            }
            _ => return None,
        };
        if !rest.is_empty() {
            return None;
        }
        Some(rec)
    }
}

/// Wraps a [`MigrationRecord`] as a log-replicable [`Command`]: a write to
/// [`MIGRATION_KEY`] carrying the encoded record.
pub fn migration_command(rec: &MigrationRecord) -> Command {
    Command::put(MIGRATION_KEY, rec.encode())
}

/// If `cmd` is a migration record (a [`MIGRATION_KEY`] write carrying an
/// encoded [`MigrationRecord`]), returns the decoded record.
pub fn as_migration_record(cmd: &Command) -> Option<MigrationRecord> {
    if cmd.key != MIGRATION_KEY {
        return None;
    }
    match &cmd.op {
        Op::Put(v) => MigrationRecord::decode(v),
        _ => None,
    }
}

/// Whether `cmd` targets the reserved migration key at all (decodable or
/// not — protocols skip store execution for every such command).
pub fn is_migration_command(cmd: &Command) -> bool {
    cmd.key == MIGRATION_KEY
}

/// Encodes the multi-version state of a range (a [`StoreDump`] restricted
/// to the range's keys) for embedding in [`MigrationRecord::Install`]. The
/// dump's sorted-by-key invariant makes the bytes deterministic.
pub fn encode_range_state(dump: &StoreDump) -> Vec<u8> {
    let mut out = Vec::new();
    let nk = dump.data.len().min(u32::MAX as usize) as u32;
    out.extend_from_slice(&nk.to_le_bytes());
    for (key, versions) in dump.data.iter().take(nk as usize) {
        out.extend_from_slice(&key.to_le_bytes());
        let nv = versions.len().min(u32::MAX as usize) as u32;
        out.extend_from_slice(&nv.to_le_bytes());
        for v in versions.iter().take(nv as usize) {
            out.extend_from_slice(&v.seq.to_le_bytes());
            out.extend_from_slice(&v.parent.to_le_bytes());
            match &v.value {
                Some(bytes) => {
                    out.push(1);
                    let n = bytes.len().min(u32::MAX as usize) as u32;
                    out.extend_from_slice(&n.to_le_bytes());
                    out.extend_from_slice(&bytes[..n as usize]);
                }
                None => out.push(0),
            }
        }
    }
    out
}

/// Decodes bytes produced by [`encode_range_state`]. Returns `None` (never
/// panics) on truncation or trailing garbage. The returned dump carries
/// `executed: 0` — the install must not perturb the destination's executed
/// counter.
pub fn decode_range_state(bytes: &[u8]) -> Option<StoreDump> {
    let mut rest = bytes;
    let nk = decode_u32(&mut rest)? as usize;
    let mut data = Vec::with_capacity(nk.min(1024));
    for _ in 0..nk {
        let key = decode_u64(&mut rest)?;
        let nv = decode_u32(&mut rest)? as usize;
        let mut versions = Vec::with_capacity(nv.min(1024));
        for _ in 0..nv {
            let seq = decode_u64(&mut rest)?;
            let parent = decode_u64(&mut rest)?;
            let (&has, r) = rest.split_first()?;
            rest = r;
            let value = match has {
                0 => None,
                1 => {
                    let n = decode_u32(&mut rest)? as usize;
                    if rest.len() < n {
                        return None;
                    }
                    let v = rest[..n].to_vec();
                    rest = &rest[n..];
                    Some(v)
                }
                _ => return None,
            };
            versions.push(Version { seq, parent, value });
        }
        data.push((key, versions));
    }
    if !rest.is_empty() {
        return None;
    }
    Some(StoreDump { data, executed: 0 })
}

fn decode_u64(rest: &mut &[u8]) -> Option<u64> {
    if rest.len() < 8 {
        return None;
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&rest[..8]);
    *rest = &rest[8..];
    Some(u64::from_le_bytes(buf))
}

fn decode_u32(rest: &mut &[u8]) -> Option<u32> {
    if rest.len() < 4 {
        return None;
    }
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&rest[..4]);
    *rest = &rest[4..];
    Some(u32::from_le_bytes(buf))
}

/// One group replica's phase in a migration it participates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Source side: `Start` executed, range frozen, awaiting commit.
    SourceFrozen,
    /// Source side: commit executed, range dropped and handed off.
    SourceDone,
    /// Destination side: `Install` executed, awaiting commit.
    DestInstalled,
    /// Destination side: commit executed, range owned at the new epoch.
    DestDone,
}

/// What the protocol must do to its store after applying a record — the
/// tracker never touches the store itself, so the protocol controls
/// exactly where in its execute loop the mutation lands.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationAction {
    /// Nothing beyond the tracker transition.
    None,
    /// Destination install: splice this range state into the store.
    Install(StoreDump),
    /// Source commit: remove the range's keys from the store.
    DropRange(KeyRange),
}

/// Why a data command on a migrating range was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReject {
    /// The migration freezing (or having dropped) the key.
    pub spec: MigrationSpec,
    /// Whether the source half has committed: `false` means the freeze
    /// window (retry here later), `true` means the range is gone from this
    /// group for good (follow the hand-off to `spec.to`).
    pub committed: bool,
}

/// Per-group-replica migration state machine, applied at execute/apply
/// time inside the protocol so that crash-recovery replay (including full
/// log re-execution after amnesia) reconstructs freezes, installs, and
/// cut-overs deterministically.
///
/// The tracker is inert until [`MigrationTracker::set_group`] tells it
/// which group its replica serves — unsharded deployments never call it,
/// so they pay nothing and stay event-identical to the pre-migration
/// build.
#[derive(Debug, Clone, Default)]
pub struct MigrationTracker {
    group: Option<GroupId>,
    entries: BTreeMap<u64, (MigrationSpec, MigrationPhase)>,
    epoch: u64,
}

impl MigrationTracker {
    /// An inert tracker (no group identity yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tells the tracker which consensus group its replica serves. Sharded
    /// factories call this once at construction.
    pub fn set_group(&mut self, group: GroupId) {
        self.group = Some(group);
    }

    /// The group this tracker serves, if sharded.
    pub fn group(&self) -> Option<GroupId> {
        self.group
    }

    /// The highest routing epoch a committed migration installed here.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one replicated record, returning the store mutation the
    /// protocol must perform. Records for other groups, invalid specs,
    /// duplicates, and out-of-order commits are all ignored (idempotent —
    /// drivers re-propose records freely).
    pub fn apply(&mut self, rec: &MigrationRecord) -> MigrationAction {
        let Some(group) = self.group else {
            return MigrationAction::None;
        };
        let spec = *rec.spec();
        if !spec.is_valid() {
            return MigrationAction::None;
        }
        match rec {
            MigrationRecord::Start(_) if spec.from == group => {
                self.entries
                    .entry(spec.id)
                    .or_insert((spec, MigrationPhase::SourceFrozen));
                MigrationAction::None
            }
            MigrationRecord::Install { state, .. } if spec.to == group => {
                if self.entries.contains_key(&spec.id) {
                    return MigrationAction::None; // duplicate install
                }
                // An undecodable state payload is ignored outright: marking
                // the install done without the data would lose the range.
                let Some(dump) = decode_range_state(state) else {
                    return MigrationAction::None;
                };
                self.entries
                    .insert(spec.id, (spec, MigrationPhase::DestInstalled));
                MigrationAction::Install(dump)
            }
            MigrationRecord::Commit {
                half: CommitHalf::Source,
                ..
            } if spec.from == group => match self.entries.get_mut(&spec.id) {
                Some(e) if e.1 == MigrationPhase::SourceFrozen => {
                    e.1 = MigrationPhase::SourceDone;
                    self.epoch = self.epoch.max(spec.epoch);
                    MigrationAction::DropRange(spec.range)
                }
                _ => MigrationAction::None,
            },
            MigrationRecord::Commit {
                half: CommitHalf::Dest,
                ..
            } if spec.to == group => {
                match self.entries.get_mut(&spec.id) {
                    Some(e) if e.1 == MigrationPhase::DestInstalled => {
                        e.1 = MigrationPhase::DestDone;
                        self.epoch = self.epoch.max(spec.epoch);
                    }
                    _ => {}
                }
                MigrationAction::None
            }
            _ => MigrationAction::None,
        }
    }

    /// If `key` belongs to a range this group froze or handed off, the
    /// data command must be rejected instead of executed. Returns the
    /// rejection context (`committed` selects retry-later vs hand-off).
    pub fn rejects(&self, key: Key) -> Option<MigrationReject> {
        let group = self.group?;
        self.entries.values().find_map(|(spec, phase)| {
            if spec.from != group || !spec.range.contains(key) {
                return None;
            }
            match phase {
                MigrationPhase::SourceFrozen => Some(MigrationReject {
                    spec: *spec,
                    committed: false,
                }),
                MigrationPhase::SourceDone => Some(MigrationReject {
                    spec: *spec,
                    committed: true,
                }),
                _ => None,
            }
        })
    }

    /// Migrations this group is the source of, frozen but not committed —
    /// the driver's to-do list for phases 2 and 3.
    pub fn outbound_pending(&self) -> Vec<MigrationSpec> {
        self.entries
            .values()
            .filter(|(_, p)| *p == MigrationPhase::SourceFrozen)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Migrations this group installed but has not seen committed — a
    /// driver re-proposes the destination commit for these.
    pub fn inbound_pending(&self) -> Vec<MigrationSpec> {
        self.entries
            .values()
            .filter(|(_, p)| *p == MigrationPhase::DestInstalled)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Whether this group has installed migration `id`'s range state
    /// (committed or not) — the driver's phase-2-done predicate.
    pub fn installed(&self, id: u64) -> bool {
        matches!(
            self.entries.get(&id),
            Some((_, MigrationPhase::DestInstalled)) | Some((_, MigrationPhase::DestDone))
        )
    }

    /// Whether migration `id` has fully committed on this side.
    pub fn done(&self, id: u64) -> bool {
        matches!(
            self.entries.get(&id),
            Some((_, MigrationPhase::SourceDone)) | Some((_, MigrationPhase::DestDone))
        )
    }

    /// Specs of every migration whose commit this replica has executed
    /// (either half) — what routing tables fold into range overrides.
    pub fn completed(&self) -> Vec<MigrationSpec> {
        self.entries
            .values()
            .filter(|(_, p)| matches!(p, MigrationPhase::SourceDone | MigrationPhase::DestDone))
            .map(|(s, _)| *s)
            .collect()
    }

    /// Whether any migration is mid-flight on this replica (frozen or
    /// installed, commit not yet executed) — drives the shard-level
    /// control timer, which stays unarmed (and the event stream untouched)
    /// when this is false.
    pub fn active(&self) -> bool {
        self.entries.values().any(|(_, p)| {
            matches!(
                p,
                MigrationPhase::SourceFrozen | MigrationPhase::DestInstalled
            )
        })
    }

    /// Serializes the tracker's replicated state (entries + epoch; the
    /// group identity is deployment config, not replicated state) for
    /// embedding in protocol snapshots — compaction discards the log below
    /// the snapshot base, so freezes recorded there must survive in the
    /// snapshot itself.
    pub fn dump(&self) -> Vec<u8> {
        let mut out = vec![TAG_TRACKER];
        out.extend_from_slice(&self.epoch.to_le_bytes());
        let n = self.entries.len().min(u32::MAX as usize) as u32;
        out.extend_from_slice(&n.to_le_bytes());
        for (spec, phase) in self.entries.values().take(n as usize) {
            spec.encode_into(&mut out);
            out.push(match phase {
                MigrationPhase::SourceFrozen => 0,
                MigrationPhase::SourceDone => 1,
                MigrationPhase::DestInstalled => 2,
                MigrationPhase::DestDone => 3,
            });
        }
        out
    }

    /// Restores entries and epoch from a [`MigrationTracker::dump`],
    /// keeping the current group identity. Returns `false` (leaving the
    /// tracker untouched) on malformed bytes.
    pub fn restore(&mut self, bytes: &[u8]) -> bool {
        let Some(mut rest) = bytes.strip_prefix(&[TAG_TRACKER]) else {
            return false;
        };
        let Some(epoch) = decode_u64(&mut rest) else {
            return false;
        };
        let Some(n) = decode_u32(&mut rest) else {
            return false;
        };
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let Some(spec) = MigrationSpec::decode_from(&mut rest) else {
                return false;
            };
            let Some((&p, r)) = rest.split_first() else {
                return false;
            };
            rest = r;
            let phase = match p {
                0 => MigrationPhase::SourceFrozen,
                1 => MigrationPhase::SourceDone,
                2 => MigrationPhase::DestInstalled,
                3 => MigrationPhase::DestDone,
                _ => return false,
            };
            entries.insert(spec.id, (spec, phase));
        }
        if !rest.is_empty() {
            return false;
        }
        self.epoch = epoch;
        self.entries = entries;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MultiVersionStore;

    fn spec() -> MigrationSpec {
        MigrationSpec {
            id: 7,
            from: GroupId(0),
            to: GroupId(1),
            range: KeyRange::new(2, 4),
            epoch: 1,
        }
    }

    fn state_of(keys: &[(Key, u8)]) -> Vec<u8> {
        let mut s = MultiVersionStore::new();
        for &(k, v) in keys {
            s.execute(&Command::put(k, vec![v]));
        }
        encode_range_state(&s.extract_range(0, Key::MAX))
    }

    #[test]
    fn records_round_trip_and_reject_truncation() {
        let records = [
            MigrationRecord::Start(spec()),
            MigrationRecord::Install {
                spec: spec(),
                state: state_of(&[(2, 9), (3, 8)]),
            },
            MigrationRecord::Commit {
                spec: spec(),
                half: CommitHalf::Source,
            },
            MigrationRecord::Commit {
                spec: spec(),
                half: CommitHalf::Dest,
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(MigrationRecord::decode(&bytes), Some(rec.clone()));
            for cut in 0..bytes.len() {
                assert_eq!(MigrationRecord::decode(&bytes[..cut]), None, "cut at {cut}");
            }
            let mut extra = bytes.clone();
            extra.push(0);
            assert_eq!(MigrationRecord::decode(&extra), None, "trailing garbage");
        }
    }

    #[test]
    fn decode_never_accepts_unknown_tags() {
        assert_eq!(MigrationRecord::decode(&[]), None);
        let mut bytes = MigrationRecord::Start(spec()).encode();
        bytes[0] = 0xC2; // a membership tag is not a migration tag
        assert_eq!(MigrationRecord::decode(&bytes), None);
        let mut commit = MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Dest,
        }
        .encode();
        *commit.last_mut().unwrap() = 9; // unknown half
        assert_eq!(MigrationRecord::decode(&commit), None);
    }

    #[test]
    fn commands_carry_records_on_the_reserved_key() {
        let rec = MigrationRecord::Start(spec());
        let cmd = migration_command(&rec);
        assert_eq!(cmd.key, MIGRATION_KEY);
        assert!(is_migration_command(&cmd));
        assert_eq!(as_migration_record(&cmd), Some(rec));
        let plain = Command::put(3, MigrationRecord::Start(spec()).encode());
        assert_eq!(
            as_migration_record(&plain),
            None,
            "ordinary keys never decode"
        );
    }

    #[test]
    fn target_groups_follow_the_protocol_phases() {
        assert_eq!(MigrationRecord::Start(spec()).target_group(), GroupId(0));
        assert_eq!(
            MigrationRecord::Install {
                spec: spec(),
                state: vec![]
            }
            .target_group(),
            GroupId(1)
        );
        assert_eq!(
            MigrationRecord::Commit {
                spec: spec(),
                half: CommitHalf::Source
            }
            .target_group(),
            GroupId(0)
        );
        assert_eq!(
            MigrationRecord::Commit {
                spec: spec(),
                half: CommitHalf::Dest
            }
            .target_group(),
            GroupId(1)
        );
    }

    #[test]
    fn range_state_round_trips() {
        let mut s = MultiVersionStore::new();
        s.execute(&Command::put(2, vec![1]));
        s.execute(&Command::put(2, vec![2]));
        s.execute(&Command::delete(3));
        let dump = s.extract_range(2, 4);
        let bytes = encode_range_state(&dump);
        assert_eq!(decode_range_state(&bytes), Some(dump));
        for cut in 0..bytes.len() {
            assert_eq!(decode_range_state(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(decode_range_state(&extra), None, "trailing garbage");
    }

    #[test]
    fn source_tracker_freezes_then_drops() {
        let mut t = MigrationTracker::new();
        t.set_group(GroupId(0));
        assert_eq!(t.rejects(3), None);
        assert_eq!(
            t.apply(&MigrationRecord::Start(spec())),
            MigrationAction::None
        );
        let r = t.rejects(3).expect("frozen key rejects");
        assert!(!r.committed);
        assert_eq!(t.rejects(4), None, "outside the range");
        assert_eq!(t.outbound_pending(), vec![spec()]);
        assert!(t.active());
        let action = t.apply(&MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Source,
        });
        assert_eq!(action, MigrationAction::DropRange(KeyRange::new(2, 4)));
        assert!(t.rejects(2).expect("dropped key still rejects").committed);
        assert_eq!(t.epoch(), 1);
        assert!(t.done(7) && !t.active());
        assert_eq!(t.completed(), vec![spec()]);
    }

    #[test]
    fn dest_tracker_installs_once_then_commits() {
        let mut t = MigrationTracker::new();
        t.set_group(GroupId(1));
        let state = state_of(&[(2, 5)]);
        let install = MigrationRecord::Install {
            spec: spec(),
            state,
        };
        let MigrationAction::Install(dump) = t.apply(&install) else {
            panic!("first install must carry the state");
        };
        assert_eq!(dump.data.len(), 1);
        assert_eq!(
            t.apply(&install),
            MigrationAction::None,
            "duplicate install ignored"
        );
        assert!(t.installed(7) && !t.done(7));
        assert_eq!(t.inbound_pending(), vec![spec()]);
        // Commit out of order on the wrong half is ignored.
        t.apply(&MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Source,
        });
        assert!(!t.done(7));
        t.apply(&MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Dest,
        });
        assert!(t.done(7));
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.rejects(3), None, "destinations never reject");
    }

    #[test]
    fn ungrouped_and_foreign_trackers_stay_inert() {
        let mut inert = MigrationTracker::new();
        assert_eq!(
            inert.apply(&MigrationRecord::Start(spec())),
            MigrationAction::None
        );
        assert!(!inert.active());
        assert_eq!(inert.rejects(3), None);

        let mut other = MigrationTracker::new();
        other.set_group(GroupId(5));
        other.apply(&MigrationRecord::Start(spec()));
        assert!(!other.active(), "records for other groups are ignored");
    }

    #[test]
    fn invalid_specs_never_freeze_anything() {
        let mut t = MigrationTracker::new();
        t.set_group(GroupId(0));
        let same_group = MigrationSpec {
            to: GroupId(0),
            ..spec()
        };
        t.apply(&MigrationRecord::Start(same_group));
        let empty = MigrationSpec {
            range: KeyRange::new(4, 4),
            ..spec()
        };
        t.apply(&MigrationRecord::Start(empty));
        assert!(!t.active());
        assert_eq!(t.rejects(3), None);
    }

    #[test]
    fn commit_before_start_is_ignored() {
        let mut t = MigrationTracker::new();
        t.set_group(GroupId(0));
        let action = t.apply(&MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Source,
        });
        assert_eq!(action, MigrationAction::None);
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.rejects(3), None);
    }

    #[test]
    fn tracker_dump_round_trips_and_rejects_garbage() {
        let mut t = MigrationTracker::new();
        t.set_group(GroupId(0));
        t.apply(&MigrationRecord::Start(spec()));
        t.apply(&MigrationRecord::Commit {
            spec: spec(),
            half: CommitHalf::Source,
        });
        let bytes = t.dump();

        let mut back = MigrationTracker::new();
        back.set_group(GroupId(0));
        assert!(back.restore(&bytes));
        assert_eq!(back.epoch(), t.epoch());
        assert_eq!(back.completed(), t.completed());
        assert!(
            back.rejects(2)
                .expect("restored drop still rejects")
                .committed
        );

        let mut untouched = MigrationTracker::new();
        for cut in 0..bytes.len() {
            assert!(!untouched.restore(&bytes[..cut]), "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(!untouched.restore(&extra), "trailing garbage");
    }
}
