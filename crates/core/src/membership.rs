//! Dynamic cluster membership: config changes, joint configurations, and
//! the dual-majority quorum used while a reconfiguration is in flight.
//!
//! The paper evaluates every protocol on a *static* cluster; this module
//! supplies the shared vocabulary that lets the protocols change shape at
//! run time without losing linearizability:
//!
//! * [`ConfigChange`] — a client-requested delta (`add` / `remove` node
//!   sets) against the current voting membership.
//! * [`Membership`] — an *absolute* voting configuration, either
//!   [`Membership::Stable`] (one member set) or [`Membership::Joint`]
//!   (Raft's C_old,new: agreement requires majorities of **both** sets).
//! * [`JointQuorum`] — a [`QuorumTracker`] satisfied only by a majority in
//!   every member set of a configuration; for a stable configuration it
//!   degenerates to the classic single majority.
//!
//! Membership rides the replicated log as an ordinary [`Command`]: a write
//! to the reserved key [`CONFIG_KEY`] whose value bytes are a tagged,
//! self-describing encoding ([`Membership::encode`] /
//! [`Membership::decode`]). That keeps every WAL record shape, wire message
//! shape, and cost-model charge identical to the static-membership build —
//! a config entry is just one more command flowing through the existing
//! machinery, persisted and replayed by the same code paths, so a node that
//! crashes mid-transition recovers its configuration exactly as it recovers
//! its log.
//!
//! The encoding is hand-rolled (length-prefixed lists of `zone.node` byte
//! pairs behind a one-byte tag) rather than routed through `paxi-codec` so
//! that `paxi-core` stays dependency-free and decoding **never panics** on
//! truncated or bit-flipped input — it returns `None` and the caller treats
//! the command as an ordinary write.

use crate::command::{Command, Key, Op};
use crate::id::NodeId;
use crate::quorum::{majority, QuorumTracker};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Reserved key carrying membership payloads through the replicated log.
///
/// Workloads draw keys from `0..K`, so the topmost key can never collide
/// with application data. Protocols skip the state-machine execution for
/// commands on this key (the "state" they mutate is the configuration
/// itself, applied at append/choose time, not at execute time).
pub const CONFIG_KEY: Key = Key::MAX;

const TAG_CHANGE: u8 = 0xC1;
const TAG_STABLE: u8 = 0xC2;
const TAG_JOINT: u8 = 0xC3;

/// A requested membership delta: nodes to add and nodes to remove, applied
/// against whatever the current configuration is when the leader sequences
/// the request.
///
/// Deltas — not absolute sets — are what clients submit, because a client
/// does not know which epoch its request will land in. The leader resolves
/// the delta into an absolute [`Membership`] at proposal time, so the log
/// entry itself is idempotent under replay.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfigChange {
    /// Nodes to add to the voting membership.
    pub add: Vec<NodeId>,
    /// Nodes to remove from the voting membership.
    pub remove: Vec<NodeId>,
}

impl ConfigChange {
    /// A change adding `nodes`.
    pub fn add(nodes: Vec<NodeId>) -> Self {
        ConfigChange {
            add: nodes,
            remove: Vec::new(),
        }
    }

    /// A change removing `nodes`.
    pub fn remove(nodes: Vec<NodeId>) -> Self {
        ConfigChange {
            remove: nodes,
            add: Vec::new(),
        }
    }

    /// Resolves the delta against `current`, returning the sorted,
    /// deduplicated target member set. Removals win over additions when a
    /// node appears in both lists, making add-then-remove-the-same-node a
    /// true no-op.
    pub fn apply(&self, current: &[NodeId]) -> Vec<NodeId> {
        let mut set: Vec<NodeId> = current.to_vec();
        set.extend(self.add.iter().copied());
        set.sort_unstable();
        set.dedup();
        set.retain(|n| !self.remove.contains(n));
        set
    }

    /// Whether applying this change to `current` leaves the membership
    /// unchanged.
    pub fn is_noop_on(&self, current: &[NodeId]) -> bool {
        let mut cur = current.to_vec();
        cur.sort_unstable();
        cur.dedup();
        self.apply(current) == cur
    }

    /// Encodes the change as a self-describing byte payload (tag `0xC1`).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![TAG_CHANGE];
        encode_nodes(&mut out, &self.add);
        encode_nodes(&mut out, &self.remove);
        out
    }

    /// Decodes a payload produced by [`ConfigChange::encode`]. Returns
    /// `None` (never panics) on wrong tag, truncation, or trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut rest = bytes.strip_prefix(&[TAG_CHANGE])?;
        let add = decode_nodes(&mut rest)?;
        let remove = decode_nodes(&mut rest)?;
        if !rest.is_empty() {
            return None;
        }
        Some(ConfigChange { add, remove })
    }
}

impl fmt::Display for ConfigChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reconfig(+{:?} -{:?})", self.add, self.remove)
    }
}

/// An absolute voting configuration at some epoch.
///
/// Epochs increase by one per committed reconfiguration; the joint stage
/// and its stable successor share an epoch number (the joint configuration
/// *is* the transition to that epoch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Membership {
    /// One member set; quorums are plain majorities of `members`.
    Stable {
        /// Configuration epoch.
        epoch: u64,
        /// The voting member set, sorted.
        members: Vec<NodeId>,
    },
    /// Raft's C_old,new: both sets vote, and agreement (elections and
    /// commits alike) requires a majority of **each**.
    Joint {
        /// Configuration epoch being transitioned *to*.
        epoch: u64,
        /// The outgoing member set.
        old: Vec<NodeId>,
        /// The incoming member set.
        new: Vec<NodeId>,
    },
}

impl Membership {
    /// The epoch-0 stable configuration over `members`.
    pub fn initial(mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        Membership::Stable { epoch: 0, members }
    }

    /// Configuration epoch.
    pub fn epoch(&self) -> u64 {
        match self {
            Membership::Stable { epoch, .. } | Membership::Joint { epoch, .. } => *epoch,
        }
    }

    /// Whether this is a joint (transitional) configuration.
    pub fn is_joint(&self) -> bool {
        matches!(self, Membership::Joint { .. })
    }

    /// The member sets that must each produce a majority: one for a stable
    /// configuration, two for a joint one.
    pub fn member_sets(&self) -> Vec<&[NodeId]> {
        match self {
            Membership::Stable { members, .. } => vec![members.as_slice()],
            Membership::Joint { old, new, .. } => vec![old.as_slice(), new.as_slice()],
        }
    }

    /// Every node with a vote in this configuration (union of the member
    /// sets), sorted and deduplicated.
    pub fn voters(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.member_sets().into_iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether `id` has a vote in this configuration.
    pub fn contains(&self, id: NodeId) -> bool {
        self.member_sets().iter().any(|s| s.contains(&id))
    }

    /// The member set this configuration is heading toward: `new` for a
    /// joint configuration, `members` for a stable one.
    pub fn target(&self) -> &[NodeId] {
        match self {
            Membership::Stable { members, .. } => members,
            Membership::Joint { new, .. } => new,
        }
    }

    /// The stable configuration this one resolves to (identity for stable).
    pub fn to_stable(&self) -> Membership {
        Membership::Stable {
            epoch: self.epoch(),
            members: self.target().to_vec(),
        }
    }

    /// Encodes the configuration as a self-describing byte payload
    /// (tag `0xC2` stable, `0xC3` joint).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Membership::Stable { epoch, members } => {
                let mut out = vec![TAG_STABLE];
                out.extend_from_slice(&epoch.to_le_bytes());
                encode_nodes(&mut out, members);
                out
            }
            Membership::Joint { epoch, old, new } => {
                let mut out = vec![TAG_JOINT];
                out.extend_from_slice(&epoch.to_le_bytes());
                encode_nodes(&mut out, old);
                encode_nodes(&mut out, new);
                out
            }
        }
    }

    /// Decodes a payload produced by [`Membership::encode`]. Returns `None`
    /// (never panics) on wrong tag, truncation, or trailing garbage.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, mut rest) = bytes.split_first()?;
        let epoch = decode_u64(&mut rest)?;
        let m = match tag {
            TAG_STABLE => Membership::Stable {
                epoch,
                members: decode_nodes(&mut rest)?,
            },
            TAG_JOINT => Membership::Joint {
                epoch,
                old: decode_nodes(&mut rest)?,
                new: decode_nodes(&mut rest)?,
            },
            _ => return None,
        };
        if !rest.is_empty() {
            return None;
        }
        Some(m)
    }
}

impl fmt::Display for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Membership::Stable { epoch, members } => {
                write!(f, "stable(e{epoch}, {} members)", members.len())
            }
            Membership::Joint { epoch, old, new } => {
                write!(f, "joint(e{epoch}, {}→{})", old.len(), new.len())
            }
        }
    }
}

fn encode_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    let n = nodes.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&n.to_le_bytes());
    for node in nodes.iter().take(n as usize) {
        out.push(node.zone);
        out.push(node.node);
    }
}

fn decode_nodes(rest: &mut &[u8]) -> Option<Vec<NodeId>> {
    if rest.len() < 2 {
        return None;
    }
    let n = u16::from_le_bytes([rest[0], rest[1]]) as usize;
    let body_end = 2 + n * 2;
    if rest.len() < body_end {
        return None;
    }
    let body = &rest[2..body_end];
    *rest = &rest[body_end..];
    Some(
        body.chunks_exact(2)
            .map(|p| NodeId::new(p[0], p[1]))
            .collect(),
    )
}

fn decode_u64(rest: &mut &[u8]) -> Option<u64> {
    if rest.len() < 8 {
        return None;
    }
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&rest[..8]);
    *rest = &rest[8..];
    Some(u64::from_le_bytes(buf))
}

/// Wraps a [`ConfigChange`] as a log-replicable [`Command`]: a write to
/// [`CONFIG_KEY`] carrying the encoded delta.
pub fn reconfig_command(change: &ConfigChange) -> Command {
    Command::put(CONFIG_KEY, change.encode())
}

/// Wraps an absolute [`Membership`] as a log-replicable [`Command`] — the
/// form leaders append after resolving a client's delta.
pub fn membership_command(m: &Membership) -> Command {
    Command::put(CONFIG_KEY, m.encode())
}

/// If `cmd` is a reconfiguration *request* (a [`CONFIG_KEY`] write carrying
/// an encoded [`ConfigChange`]), returns the decoded delta.
pub fn as_config_change(cmd: &Command) -> Option<ConfigChange> {
    config_payload(cmd).and_then(ConfigChange::decode)
}

/// If `cmd` is a membership *log entry* (a [`CONFIG_KEY`] write carrying an
/// encoded absolute [`Membership`]), returns the decoded configuration.
pub fn as_membership(cmd: &Command) -> Option<Membership> {
    config_payload(cmd).and_then(Membership::decode)
}

/// Whether `cmd` targets the reserved configuration key at all.
pub fn is_config_command(cmd: &Command) -> bool {
    cmd.key == CONFIG_KEY
}

fn config_payload(cmd: &Command) -> Option<&[u8]> {
    if cmd.key != CONFIG_KEY {
        return None;
    }
    match &cmd.op {
        Op::Put(v) => Some(v.as_slice()),
        _ => None,
    }
}

/// A quorum tracker over every member set of a [`Membership`]: satisfied
/// only when a majority of *each* set has acked. For a stable configuration
/// this is exactly the classic majority quorum; for a joint configuration
/// it is Raft's dual-majority commit/election rule.
///
/// Acks from nodes outside every member set are recorded (they count as
/// "newly seen") but can never help satisfy the quorum — a removed node
/// still answering as a learner cannot pollute agreement.
#[derive(Debug, Clone)]
pub struct JointQuorum {
    sets: Vec<Vec<NodeId>>,
    acks: HashSet<NodeId>,
}

impl JointQuorum {
    /// Tracker for the member sets of `m`.
    pub fn of(m: &Membership) -> Self {
        JointQuorum {
            sets: m.member_sets().into_iter().map(|s| s.to_vec()).collect(),
            acks: HashSet::new(),
        }
    }

    /// Tracker over one plain member set (a stable configuration).
    pub fn single(members: Vec<NodeId>) -> Self {
        JointQuorum {
            sets: vec![members],
            acks: HashSet::new(),
        }
    }
}

impl QuorumTracker for JointQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.acks.insert(id)
    }

    fn satisfied(&self) -> bool {
        self.sets.iter().all(|set| {
            let got = set.iter().filter(|n| self.acks.contains(n)).count();
            got >= majority(set.len().max(1))
        })
    }

    fn reset(&mut self) {
        self.acks.clear();
    }

    fn count(&self) -> usize {
        self.acks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(zone: u8, node: u8) -> NodeId {
        NodeId::new(zone, node)
    }

    fn five() -> Vec<NodeId> {
        (0..5).map(|i| n(0, i)).collect()
    }

    #[test]
    fn apply_adds_removes_and_dedups() {
        let change = ConfigChange {
            add: vec![n(0, 5), n(0, 5)],
            remove: vec![n(0, 4)],
        };
        assert_eq!(
            change.apply(&five()),
            vec![n(0, 0), n(0, 1), n(0, 2), n(0, 3), n(0, 5)]
        );
    }

    #[test]
    fn add_then_remove_same_node_is_noop() {
        let change = ConfigChange {
            add: vec![n(0, 5)],
            remove: vec![n(0, 5)],
        };
        assert!(change.is_noop_on(&five()));
        assert_eq!(change.apply(&five()), five());
    }

    #[test]
    fn change_round_trips_and_rejects_truncation() {
        let change = ConfigChange {
            add: vec![n(1, 2)],
            remove: vec![n(0, 4), n(3, 3)],
        };
        let bytes = change.encode();
        assert_eq!(ConfigChange::decode(&bytes), Some(change));
        for cut in 0..bytes.len() {
            assert_eq!(ConfigChange::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(ConfigChange::decode(&extra), None, "trailing garbage");
    }

    #[test]
    fn membership_round_trips_both_variants() {
        let stable = Membership::Stable {
            epoch: 7,
            members: five(),
        };
        let joint = Membership::Joint {
            epoch: 8,
            old: five(),
            new: vec![n(0, 0), n(1, 0)],
        };
        for m in [stable, joint] {
            let bytes = m.encode();
            assert_eq!(Membership::decode(&bytes), Some(m.clone()));
            for cut in 0..bytes.len() {
                assert_eq!(Membership::decode(&bytes[..cut]), None, "cut at {cut}");
            }
        }
    }

    #[test]
    fn decode_never_accepts_unknown_tags() {
        assert_eq!(Membership::decode(&[]), None);
        assert_eq!(
            Membership::decode(&[0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            None
        );
        assert_eq!(ConfigChange::decode(&[0xC2, 0, 0, 0, 0]), None);
    }

    #[test]
    fn commands_carry_configs_on_the_reserved_key() {
        let change = ConfigChange::add(vec![n(0, 5)]);
        let cmd = reconfig_command(&change);
        assert_eq!(cmd.key, CONFIG_KEY);
        assert_eq!(as_config_change(&cmd), Some(change));
        assert_eq!(
            as_membership(&cmd),
            None,
            "a delta is not an absolute config"
        );

        let m = Membership::initial(five());
        let cmd = membership_command(&m);
        assert_eq!(as_membership(&cmd), Some(m));
        assert_eq!(as_config_change(&cmd), None);

        let plain = Command::put(3, vec![0xC2, 1, 2]);
        assert_eq!(as_membership(&plain), None, "ordinary keys never decode");
    }

    #[test]
    fn joint_quorum_needs_both_majorities() {
        let m = Membership::Joint {
            epoch: 1,
            old: vec![n(0, 0), n(0, 1), n(0, 2)],
            new: vec![n(0, 2), n(0, 3), n(0, 4)],
        };
        let mut q = JointQuorum::of(&m);
        q.ack(n(0, 0));
        q.ack(n(0, 1));
        assert!(!q.satisfied(), "old majority alone is not enough");
        q.ack(n(0, 3));
        assert!(!q.satisfied(), "one ack in new is not a majority of it");
        q.ack(n(0, 4));
        assert!(q.satisfied());
    }

    #[test]
    fn joint_quorum_ignores_outsider_acks() {
        let m = Membership::Stable {
            epoch: 0,
            members: vec![n(0, 0), n(0, 1), n(0, 2)],
        };
        let mut q = JointQuorum::of(&m);
        assert!(q.ack(n(9, 9)), "outsider ack is recorded");
        assert!(q.ack(n(9, 8)));
        assert!(!q.satisfied(), "outsiders never satisfy the quorum");
        q.ack(n(0, 0));
        q.ack(n(0, 1));
        assert!(q.satisfied());
    }

    #[test]
    fn stable_joint_quorum_matches_plain_majority() {
        let members = five();
        let mut q = JointQuorum::single(members.clone());
        for (i, node) in members.iter().enumerate() {
            q.ack(*node);
            assert_eq!(q.satisfied(), i + 1 >= majority(members.len()));
        }
        q.reset();
        assert_eq!(q.count(), 0);
        assert!(!q.satisfied());
    }

    #[test]
    fn voters_union_and_target() {
        let joint = Membership::Joint {
            epoch: 3,
            old: vec![n(0, 1), n(0, 0)],
            new: vec![n(0, 1), n(0, 2)],
        };
        assert_eq!(joint.voters(), vec![n(0, 0), n(0, 1), n(0, 2)]);
        assert!(joint.contains(n(0, 0)) && joint.contains(n(0, 2)));
        assert!(!joint.contains(n(1, 0)));
        assert_eq!(joint.target(), &[n(0, 1), n(0, 2)]);
        assert_eq!(
            joint.to_stable(),
            Membership::Stable {
                epoch: 3,
                members: vec![n(0, 1), n(0, 2)]
            }
        );
    }
}
