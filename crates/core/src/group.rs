//! Multi-group (sharded) consensus: group ids and the group-tagged message
//! envelope.
//!
//! A sharded deployment statically partitions the keyspace into `N`
//! independent protocol groups that share the same set of nodes and the same
//! transports. On the wire, every protocol message is wrapped in a
//! [`GroupMsg`] carrying the [`GroupId`] of the group it belongs to, so one
//! socket (or one simulated link) multiplexes all groups of a node pair.
//! The runtime side lives in `paxi-shard`; these types are in `paxi-core` so
//! the envelope can be named by transports, codecs, and protocols without a
//! dependency on the sharding runtime.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one consensus group of a sharded deployment. Groups are dense:
/// a deployment with `N` groups uses ids `0..N`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The group-id field of the message envelope: a protocol message tagged
/// with the consensus group it belongs to. All groups of a node share one
/// inbox; the sharded runtime dispatches on `group`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupMsg<M> {
    /// The consensus group this message belongs to.
    pub group: GroupId,
    /// The protocol message itself, untouched.
    pub msg: M,
}

impl<M> GroupMsg<M> {
    /// Tags `msg` with `group`.
    pub fn new(group: GroupId, msg: M) -> Self {
        GroupMsg { group, msg }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_id_displays_compactly() {
        assert_eq!(GroupId(3).to_string(), "g3");
    }

    #[test]
    fn group_msg_preserves_payload() {
        let m = GroupMsg::new(GroupId(7), "ping");
        assert_eq!(m.group, GroupId(7));
        assert_eq!(m.msg, "ping");
    }
}
