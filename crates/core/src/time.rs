//! Virtual time.
//!
//! Both the discrete-event simulator and the analytic model work in
//! nanoseconds carried in a plain `u64`, wrapped in a [`Nanos`] newtype for
//! arithmetic safety. Wall-clock runtimes convert from `std::time::Instant`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (virtual) time, or a duration, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero time.
    pub const ZERO: Nanos = Nanos(0);

    /// From whole seconds.
    pub const fn secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// From milliseconds.
    pub const fn millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// From microseconds.
    pub const fn micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// From fractional milliseconds (`f64`), rounding to the nearest ns.
    pub fn from_millis_f64(ms: f64) -> Self {
        Nanos((ms.max(0.0) * 1e6).round() as u64)
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Larger of the two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::secs(1), Nanos::millis(1000));
        assert_eq!(Nanos::millis(1), Nanos::micros(1000));
        assert_eq!(Nanos::from_millis_f64(0.5), Nanos::micros(500));
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::millis(3) + Nanos::micros(500);
        assert_eq!(a.as_millis_f64(), 3.5);
        assert_eq!(a - Nanos::millis(3), Nanos::micros(500));
        assert_eq!(
            Nanos::millis(1).saturating_sub(Nanos::millis(2)),
            Nanos::ZERO
        );
        assert_eq!(Nanos::millis(1).max(Nanos::millis(2)), Nanos::millis(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::micros(15).to_string(), "15.0us");
        assert_eq!(Nanos::millis(2).to_string(), "2.000ms");
        assert_eq!(Nanos::secs(2).to_string(), "2.000s");
    }
}
