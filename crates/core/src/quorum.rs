//! Quorum systems.
//!
//! A quorum system is the key abstraction for ensuring consistency in
//! fault-tolerant distributed computing: a protocol step completes once acks
//! arrive from a set of nodes forming a quorum, and safety follows from any
//! two (relevant) quorums intersecting. Paxi ships several quorum systems out
//! of the box so protocols can probe the design space without changing code:
//!
//! * [`MajorityQuorum`] — classic Paxos majority, `⌊N/2⌋+1`.
//! * [`CountQuorum`] — any fixed number of acks (FPaxos phase-2 quorums,
//!   thrifty variants).
//! * [`FastQuorum`] — EPaxos fast path, `f + ⌊(f+1)/2⌋ + 1` nodes (≈ 3/4 N).
//! * [`GridQuorum`] — rows for phase-1, columns for phase-2.
//! * [`FlexibleGridQuorum`] — WPaxos quorums parameterized by per-zone fault
//!   tolerance `f` and zone fault tolerance `fz`.
//! * [`GroupQuorum`] — majority within an explicit member subset (WanKeeper /
//!   VPaxos Paxos groups).
//!
//! Every system exposes the same two-method interface the paper describes:
//! `ack()` and `satisfied()`.

use crate::id::NodeId;
use std::collections::HashSet;

/// Ack-tracking interface shared by all quorum systems.
pub trait QuorumTracker {
    /// Records a (positive) acknowledgement from `id`. Returns `true` if the
    /// ack was newly recorded (not a duplicate).
    fn ack(&mut self, id: NodeId) -> bool;
    /// Whether the collected acks form a quorum.
    fn satisfied(&self) -> bool;
    /// Forgets all collected acks so the tracker can be reused.
    fn reset(&mut self);
    /// Number of distinct acks recorded.
    fn count(&self) -> usize;
}

/// Size of a majority quorum for `n` nodes: `⌊n/2⌋ + 1`.
pub const fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// Size of the EPaxos fast quorum (command leader included) for `n = 2f+1`
/// nodes: `f + ⌊(f+1)/2⌋ + 1`, roughly three quarters of the cluster.
pub const fn fast_quorum_size(n: usize) -> usize {
    let f = n / 2;
    f + (f + 1) / 2 + 1
}

/// Classic majority quorum over `n` nodes.
#[derive(Debug, Clone)]
pub struct MajorityQuorum {
    n: usize,
    acks: HashSet<NodeId>,
}

impl MajorityQuorum {
    /// Majority tracker for a cluster of `n` nodes.
    pub fn new(n: usize) -> Self {
        MajorityQuorum {
            n,
            acks: HashSet::new(),
        }
    }

    /// The number of acks required.
    pub fn threshold(&self) -> usize {
        majority(self.n)
    }
}

impl QuorumTracker for MajorityQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.acks.insert(id)
    }
    fn satisfied(&self) -> bool {
        self.acks.len() >= self.threshold()
    }
    fn reset(&mut self) {
        self.acks.clear();
    }
    fn count(&self) -> usize {
        self.acks.len()
    }
}

/// A quorum satisfied by any `size` distinct acks — the building block for
/// FPaxos's small phase-2 quorums and thrifty messaging.
#[derive(Debug, Clone)]
pub struct CountQuorum {
    size: usize,
    acks: HashSet<NodeId>,
}

impl CountQuorum {
    /// Tracker requiring `size` distinct acks.
    pub fn new(size: usize) -> Self {
        CountQuorum {
            size,
            acks: HashSet::new(),
        }
    }

    /// The number of acks required.
    pub fn threshold(&self) -> usize {
        self.size
    }
}

impl QuorumTracker for CountQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.acks.insert(id)
    }
    fn satisfied(&self) -> bool {
        self.acks.len() >= self.size
    }
    fn reset(&mut self) {
        self.acks.clear();
    }
    fn count(&self) -> usize {
        self.acks.len()
    }
}

/// EPaxos fast-path quorum: `fast_quorum_size(n)` acks including the command
/// leader's implicit self-ack.
#[derive(Debug, Clone)]
pub struct FastQuorum {
    inner: CountQuorum,
}

impl FastQuorum {
    /// Fast quorum tracker for `n` nodes.
    pub fn new(n: usize) -> Self {
        FastQuorum {
            inner: CountQuorum::new(fast_quorum_size(n)),
        }
    }

    /// The number of acks required.
    pub fn threshold(&self) -> usize {
        self.inner.threshold()
    }
}

impl QuorumTracker for FastQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.inner.ack(id)
    }
    fn satisfied(&self) -> bool {
        self.inner.satisfied()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn count(&self) -> usize {
        self.inner.count()
    }
}

/// Which phase a grid-style quorum serves. Phase-1 quorums run across zones
/// (rows); phase-2 quorums run within zones (columns); any phase-1 quorum
/// intersects any phase-2 quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPhase {
    /// Leader-election / ownership-acquisition phase.
    One,
    /// Replication phase.
    Two,
}

/// Simple grid quorum over a `zones × per_zone` node grid: a phase-1 quorum
/// is one full *row* (one node from every zone); a phase-2 quorum is one full
/// *column* (every node of one zone).
#[derive(Debug, Clone)]
pub struct GridQuorum {
    zones: u8,
    per_zone: u8,
    phase: GridPhase,
    acks: HashSet<NodeId>,
}

impl GridQuorum {
    /// Grid tracker for the given phase.
    pub fn new(zones: u8, per_zone: u8, phase: GridPhase) -> Self {
        GridQuorum {
            zones,
            per_zone,
            phase,
            acks: HashSet::new(),
        }
    }

    fn zones_covered(&self) -> usize {
        let mut zs: HashSet<u8> = HashSet::new();
        for a in &self.acks {
            zs.insert(a.zone);
        }
        zs.len()
    }

    fn full_zone(&self) -> bool {
        let mut per_zone_count = vec![0usize; self.zones as usize];
        for a in &self.acks {
            if (a.zone as usize) < per_zone_count.len() {
                per_zone_count[a.zone as usize] += 1;
            }
        }
        per_zone_count.iter().any(|&c| c >= self.per_zone as usize)
    }
}

impl QuorumTracker for GridQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.acks.insert(id)
    }
    fn satisfied(&self) -> bool {
        match self.phase {
            GridPhase::One => self.zones_covered() >= self.zones as usize,
            GridPhase::Two => self.full_zone(),
        }
    }
    fn reset(&mut self) {
        self.acks.clear();
    }
    fn count(&self) -> usize {
        self.acks.len()
    }
}

/// WPaxos flexible grid quorum.
///
/// For a grid of `zones` zones with `per_zone` nodes each, tolerating `f`
/// node crashes per zone and `fz` full-zone failures:
///
/// * a **phase-1 (q1)** quorum contains `per_zone − f` nodes from each of
///   `zones − fz` zones;
/// * a **phase-2 (q2)** quorum contains `f + 1` nodes from each of `fz + 1`
///   zones.
///
/// With `fz = 0`, q2 is satisfied entirely inside the leader's own zone,
/// which is what lets WPaxos commit local commands with LAN latency in a WAN
/// deployment. Every q1 intersects every q2 because `(f+1) + (per_zone−f) >
/// per_zone` within a zone and `(fz+1) + (zones−fz) > zones` across zones.
#[derive(Debug, Clone)]
pub struct FlexibleGridQuorum {
    zones: u8,
    per_zone: u8,
    f: u8,
    fz: u8,
    phase: GridPhase,
    acks: HashSet<NodeId>,
}

impl FlexibleGridQuorum {
    /// Flexible grid tracker for the given phase.
    pub fn new(zones: u8, per_zone: u8, f: u8, fz: u8, phase: GridPhase) -> Self {
        assert!(f < per_zone, "f must be < nodes per zone");
        assert!(fz < zones, "fz must be < number of zones");
        FlexibleGridQuorum {
            zones,
            per_zone,
            f,
            fz,
            phase,
            acks: HashSet::new(),
        }
    }

    /// Nodes required per zone for this phase.
    pub fn per_zone_threshold(&self) -> usize {
        match self.phase {
            GridPhase::One => (self.per_zone - self.f) as usize,
            GridPhase::Two => (self.f + 1) as usize,
        }
    }

    /// Zones required for this phase.
    pub fn zone_threshold(&self) -> usize {
        match self.phase {
            GridPhase::One => (self.zones - self.fz) as usize,
            GridPhase::Two => (self.fz + 1) as usize,
        }
    }

    /// Total acks in the smallest satisfying set: used by the analytic model
    /// as the quorum size `Q`.
    pub fn size(&self) -> usize {
        self.per_zone_threshold() * self.zone_threshold()
    }
}

impl QuorumTracker for FlexibleGridQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        self.acks.insert(id)
    }
    fn satisfied(&self) -> bool {
        let mut per_zone_count = vec![0usize; self.zones as usize];
        for a in &self.acks {
            if (a.zone as usize) < per_zone_count.len() {
                per_zone_count[a.zone as usize] += 1;
            }
        }
        let needed = self.per_zone_threshold();
        let zones_ok = per_zone_count.iter().filter(|&&c| c >= needed).count();
        zones_ok >= self.zone_threshold()
    }
    fn reset(&mut self) {
        self.acks.clear();
    }
    fn count(&self) -> usize {
        self.acks.len()
    }
}

/// Majority quorum within an explicit member set — WanKeeper level-1 groups
/// and VPaxos per-zone Paxos groups use this. Acks from non-members are
/// ignored.
#[derive(Debug, Clone)]
pub struct GroupQuorum {
    members: Vec<NodeId>,
    acks: HashSet<NodeId>,
}

impl GroupQuorum {
    /// Majority-of-`members` tracker.
    pub fn new(members: Vec<NodeId>) -> Self {
        GroupQuorum {
            members,
            acks: HashSet::new(),
        }
    }

    /// The number of acks required.
    pub fn threshold(&self) -> usize {
        majority(self.members.len())
    }

    /// The group's member list.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }
}

impl QuorumTracker for GroupQuorum {
    fn ack(&mut self, id: NodeId) -> bool {
        if self.members.contains(&id) {
            self.acks.insert(id)
        } else {
            false
        }
    }
    fn satisfied(&self) -> bool {
        self.acks.len() >= self.threshold()
    }
    fn reset(&mut self) {
        self.acks.clear();
    }
    fn count(&self) -> usize {
        self.acks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(z: u8, i: u8) -> NodeId {
        NodeId::new(z, i)
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(majority(3), 2);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(9), 5);
        assert_eq!(majority(4), 3);
    }

    #[test]
    fn fast_quorum_sizes_are_about_three_quarters() {
        assert_eq!(fast_quorum_size(5), 4); // f=2 -> 2+1+1
        assert_eq!(fast_quorum_size(9), 7); // f=4 -> 4+2+1
        assert_eq!(fast_quorum_size(3), 3); // f=1 -> 1+1+1
    }

    #[test]
    fn majority_quorum_tracks_distinct_acks() {
        let mut q = MajorityQuorum::new(5);
        assert!(!q.satisfied());
        assert!(q.ack(n(0, 0)));
        assert!(!q.ack(n(0, 0)), "duplicate ack ignored");
        q.ack(n(0, 1));
        assert!(!q.satisfied());
        q.ack(n(0, 2));
        assert!(q.satisfied());
        q.reset();
        assert!(!q.satisfied());
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn grid_phase1_needs_every_zone() {
        let mut q = GridQuorum::new(3, 3, GridPhase::One);
        q.ack(n(0, 0));
        q.ack(n(1, 2));
        assert!(!q.satisfied());
        q.ack(n(2, 1));
        assert!(q.satisfied());
    }

    #[test]
    fn grid_phase2_needs_a_full_zone() {
        let mut q = GridQuorum::new(3, 3, GridPhase::Two);
        q.ack(n(0, 0));
        q.ack(n(1, 0));
        q.ack(n(2, 0));
        assert!(!q.satisfied(), "a row is not a column");
        q.ack(n(1, 1));
        q.ack(n(1, 2));
        assert!(q.satisfied());
    }

    #[test]
    fn flexible_grid_fz0_commits_within_one_zone() {
        // 3 zones x 3 nodes, f=1, fz=0: q2 = 2 nodes in 1 zone.
        let mut q2 = FlexibleGridQuorum::new(3, 3, 1, 0, GridPhase::Two);
        assert_eq!(q2.size(), 2);
        q2.ack(n(1, 0));
        assert!(!q2.satisfied());
        q2.ack(n(1, 2));
        assert!(q2.satisfied());
    }

    #[test]
    fn flexible_grid_fz1_needs_two_zones() {
        let mut q2 = FlexibleGridQuorum::new(3, 3, 1, 1, GridPhase::Two);
        assert_eq!(q2.size(), 4);
        q2.ack(n(0, 0));
        q2.ack(n(0, 1));
        assert!(!q2.satisfied());
        q2.ack(n(2, 0));
        q2.ack(n(2, 1));
        assert!(q2.satisfied());
    }

    #[test]
    fn flexible_grid_q1_q2_intersect() {
        // Exhaustively verify the intersection property on a 3x3 grid for all
        // valid (f, fz): every minimal q1 must intersect every minimal q2.
        // We spot-check by construction: q1 takes zones {0,1} missing fz=1
        // zone 2, q2 takes zone 2... q2 with fz=1 needs 2 zones so overlap
        // with q1's zones is guaranteed.
        let q1 = FlexibleGridQuorum::new(3, 3, 1, 1, GridPhase::One);
        let q2 = FlexibleGridQuorum::new(3, 3, 1, 1, GridPhase::Two);
        // zone overlap: (zones - fz) + (fz + 1) = zones + 1 > zones
        assert!(q1.zone_threshold() + q2.zone_threshold() > 3);
        // node overlap within the shared zone: (per_zone - f) + (f+1) > per_zone
        assert!(q1.per_zone_threshold() + q2.per_zone_threshold() > 3);
    }

    #[test]
    fn group_quorum_ignores_non_members() {
        let mut q = GroupQuorum::new(vec![n(0, 0), n(0, 1), n(0, 2)]);
        assert!(!q.ack(n(1, 0)), "outsider ack rejected");
        q.ack(n(0, 0));
        q.ack(n(0, 1));
        assert!(q.satisfied());
    }

    #[test]
    fn count_quorum_exact_threshold() {
        let mut q = CountQuorum::new(3);
        for i in 0..2 {
            q.ack(n(0, i));
        }
        assert!(!q.satisfied());
        q.ack(n(0, 2));
        assert!(q.satisfied());
    }
}
