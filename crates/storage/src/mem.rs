//! Deterministic in-memory storage backend for the simulator.
//!
//! A [`MemHub`] is the "disk array" of a simulated cluster: one in-memory
//! disk per key (the simulator uses `NodeId`). Handles are cheap clones
//! sharing the hub, so the simulator can crash a node's disk — dropping the
//! unsynced suffix and applying any injected [`StorageFault`]s — while the
//! replica holds its own [`MemStorage`] handle. Everything is synchronous
//! and allocation-only, so simulation runs stay bit-for-bit deterministic.

use crate::record::{encode_record, record_spans, scan_records};
use crate::{FsyncPolicy, Recovery, Storage, StorageError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A storage fault applied to a disk at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The final synced record is cut in half, as if the machine died
    /// mid-write: recovery must detect and truncate it.
    TornTail,
    /// One byte of the final synced record is flipped in place, as if the
    /// medium rotted: recovery must fail its CRC and truncate.
    CorruptRecord,
}

#[derive(Debug, Default)]
struct MemDisk {
    snapshot: Option<Vec<u8>>,
    /// Bytes that survived the last sync (or snapshot install).
    synced: Vec<u8>,
    /// Appends since the last sync — lost if the node crashes.
    unsynced: Vec<u8>,
    unsynced_appends: usize,
    /// Syncs since last drained (the simulator charges these).
    syncs: u64,
    /// Appends since last drained (the simulator's WAL-append counter).
    appends: u64,
    /// Faults armed for the next crash.
    faults: Vec<StorageFault>,
}

impl MemDisk {
    fn flush(&mut self) {
        if self.unsynced.is_empty() {
            return;
        }
        self.synced.extend_from_slice(&self.unsynced);
        self.unsynced.clear();
        self.unsynced_appends = 0;
        self.syncs += 1;
    }

    fn crash(&mut self) {
        self.unsynced.clear();
        self.unsynced_appends = 0;
        for fault in std::mem::take(&mut self.faults) {
            let Some(&(start, end)) = record_spans(&self.synced).last() else {
                continue;
            };
            match fault {
                StorageFault::TornTail => {
                    // Leave a strict prefix of the record: torn, not gone.
                    self.synced.truncate(start + (end - start) / 2);
                }
                StorageFault::CorruptRecord => {
                    // Flip a payload byte (or a CRC byte for empty payloads).
                    let idx = if end > start + 8 {
                        start + 8
                    } else {
                        start + 4
                    };
                    self.synced[idx] ^= 0x01;
                }
            }
        }
    }
}

/// The shared in-memory "disk array": one durable store per key.
#[derive(Debug)]
pub struct MemHub<K: Eq + Hash> {
    disks: Arc<Mutex<HashMap<K, MemDisk>>>,
    policy: FsyncPolicy,
}

impl<K: Eq + Hash> Clone for MemHub<K> {
    fn clone(&self) -> Self {
        MemHub {
            disks: Arc::clone(&self.disks),
            policy: self.policy,
        }
    }
}

impl<K: Eq + Hash + Clone + Send + 'static> MemHub<K> {
    /// An empty hub whose handles all use `policy`.
    pub fn new(policy: FsyncPolicy) -> Self {
        MemHub {
            disks: Arc::new(Mutex::new(HashMap::new())),
            policy,
        }
    }

    /// Opens (creating if needed) the disk for `key` and returns a handle.
    /// Re-opening after a crash sees whatever survived.
    pub fn open(&self, key: K) -> MemStorage<K> {
        self.disks.lock().entry(key.clone()).or_default();
        MemStorage {
            disks: Arc::clone(&self.disks),
            key,
            policy: self.policy,
        }
    }

    /// Arms `fault` to be applied to `key`'s disk at its next crash.
    pub fn inject(&self, key: K, fault: StorageFault) {
        self.disks.lock().entry(key).or_default().faults.push(fault);
    }

    /// Crashes `key`'s disk: the unsynced suffix is lost and any armed
    /// faults are applied to the synced bytes.
    pub fn crash(&self, key: &K) {
        if let Some(d) = self.disks.lock().get_mut(key) {
            d.crash();
        }
    }

    /// Returns and resets the number of syncs `key`'s disk performed since
    /// the last drain — the simulator turns these into service time.
    pub fn drain_syncs(&self, key: &K) -> u64 {
        self.disks
            .lock()
            .get_mut(key)
            .map(|d| std::mem::take(&mut d.syncs))
            .unwrap_or(0)
    }

    /// Returns and resets the number of records appended to `key`'s disk
    /// since the last drain — the simulator's observability layer feeds
    /// these into the per-node WAL-append counter.
    pub fn drain_appends(&self, key: &K) -> u64 {
        self.disks
            .lock()
            .get_mut(key)
            .map(|d| std::mem::take(&mut d.appends))
            .unwrap_or(0)
    }

    /// Bytes currently synced for `key` (diagnostics and tests).
    pub fn synced_len(&self, key: &K) -> usize {
        self.disks
            .lock()
            .get(key)
            .map(|d| d.synced.len())
            .unwrap_or(0)
    }

    /// Bytes currently buffered but unsynced for `key` (tests).
    pub fn unsynced_len(&self, key: &K) -> usize {
        self.disks
            .lock()
            .get(key)
            .map(|d| d.unsynced.len())
            .unwrap_or(0)
    }
}

/// One replica's handle onto its [`MemHub`] disk.
#[derive(Debug)]
pub struct MemStorage<K: Eq + Hash> {
    disks: Arc<Mutex<HashMap<K, MemDisk>>>,
    key: K,
    policy: FsyncPolicy,
}

impl<K: Eq + Hash + Clone + Send + 'static> Storage for MemStorage<K> {
    fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        if payload.len() + 4 > paxi_codec::MAX_FRAME {
            return Err(StorageError::RecordTooLarge(payload.len()));
        }
        let mut disks = self.disks.lock();
        let d = disks.entry(self.key.clone()).or_default();
        d.unsynced.extend_from_slice(&encode_record(payload));
        d.unsynced_appends += 1;
        d.appends = d.appends.saturating_add(1);
        match self.policy {
            FsyncPolicy::Always => d.flush(),
            FsyncPolicy::Batch { appends, .. } => {
                // Deterministic backend: the count threshold alone triggers
                // the group commit (no wall clock to honor the interval).
                if d.unsynced_appends >= appends.max(1) {
                    d.flush();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        let mut disks = self.disks.lock();
        disks.entry(self.key.clone()).or_default().flush();
        Ok(())
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        let mut disks = self.disks.lock();
        let d = disks.entry(self.key.clone()).or_default();
        d.snapshot = Some(snapshot.to_vec());
        d.synced.clear();
        d.unsynced.clear();
        d.unsynced_appends = 0;
        d.syncs += 1;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovery, StorageError> {
        let mut disks = self.disks.lock();
        let d = disks.entry(self.key.clone()).or_default();
        // A crash will already have emptied the unsynced buffer before
        // recovery runs; on a live handle, flush the buffered suffix first
        // so the records reported as recovered are exactly the bytes that
        // are durable afterwards — returning buffered records while
        // discarding them from the disk would lose them at the next crash.
        d.flush();
        let scan = scan_records(&d.synced);
        // Repair: drop the damaged tail so the next append starts clean.
        d.synced.truncate(scan.valid_len);
        Ok(Recovery {
            snapshot: d.snapshot.clone(),
            records: scan.records,
            damage: scan.damage,
        })
    }

    fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Damage;

    fn payloads(r: &Recovery) -> Vec<&[u8]> {
        r.records.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn appends_recover_in_order() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let mut s = hub.open(7);
        s.append(b"a").unwrap();
        s.append(b"bb").unwrap();
        s.append(b"ccc").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(payloads(&r), vec![b"a".as_slice(), b"bb", b"ccc"]);
        assert!(r.snapshot.is_none());
    }

    #[test]
    fn crash_under_never_loses_exactly_the_unsynced_suffix() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Never);
        let mut s = hub.open(1);
        s.append(b"synced-1").unwrap();
        s.append(b"synced-2").unwrap();
        s.sync().unwrap();
        s.append(b"doomed-1").unwrap();
        s.append(b"doomed-2").unwrap();
        hub.crash(&1);
        let r = hub.open(1).recover().unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(payloads(&r), vec![b"synced-1".as_slice(), b"synced-2"]);
    }

    #[test]
    fn batch_policy_flushes_on_the_count_threshold() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Batch {
            appends: 3,
            interval_micros: 0,
        });
        let mut s = hub.open(1);
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        assert_eq!(hub.synced_len(&1), 0, "below threshold: still buffered");
        s.append(b"three").unwrap();
        assert!(
            hub.synced_len(&1) > 0,
            "third append triggers the group commit"
        );
        assert_eq!(hub.unsynced_len(&1), 0);
        assert_eq!(hub.drain_syncs(&1), 1);
        assert_eq!(hub.drain_syncs(&1), 0, "drain resets the counter");
    }

    #[test]
    fn recover_on_a_live_handle_makes_reported_records_durable() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Never);
        let mut s = hub.open(1);
        s.append(b"synced").unwrap();
        s.sync().unwrap();
        s.append(b"buffered").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(payloads(&r), vec![b"synced".as_slice(), b"buffered"]);
        // Whatever recover reported must survive a crash right after it.
        hub.crash(&1);
        let r2 = hub.open(1).recover().unwrap();
        assert_eq!(r2.damage, Damage::Clean);
        assert_eq!(payloads(&r2), vec![b"synced".as_slice(), b"buffered"]);
    }

    #[test]
    fn snapshot_install_truncates_the_log() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let mut s = hub.open(1);
        s.append(b"pre-snapshot").unwrap();
        s.install_snapshot(b"STATE").unwrap();
        s.append(b"post-snapshot").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"STATE".as_slice()));
        assert_eq!(payloads(&r), vec![b"post-snapshot".as_slice()]);
    }

    #[test]
    fn torn_tail_injection_is_detected_and_truncated() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let mut s = hub.open(1);
        s.append(b"keep").unwrap();
        s.append(b"torn").unwrap();
        hub.inject(1, StorageFault::TornTail);
        hub.crash(&1);
        let r = hub.open(1).recover().unwrap();
        assert_eq!(r.damage, Damage::TornTail);
        assert_eq!(payloads(&r), vec![b"keep".as_slice()]);
        // Recovery repaired the log: a fresh append then recovers cleanly.
        let mut s = hub.open(1);
        s.append(b"after").unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(payloads(&r), vec![b"keep".as_slice(), b"after"]);
    }

    #[test]
    fn corrupt_record_injection_is_detected_and_truncated() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let mut s = hub.open(1);
        s.append(b"keep").unwrap();
        s.append(b"rots").unwrap();
        hub.inject(1, StorageFault::CorruptRecord);
        hub.crash(&1);
        let r = hub.open(1).recover().unwrap();
        assert_eq!(r.damage, Damage::Corrupt);
        assert_eq!(payloads(&r), vec![b"keep".as_slice()]);
    }

    #[test]
    fn handles_share_one_disk_per_key() {
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        hub.open(1).append(b"from-a").unwrap();
        let r = hub.open(1).recover().unwrap();
        assert_eq!(payloads(&r), vec![b"from-a".as_slice()]);
        assert!(hub.open(2).recover().unwrap().records.is_empty());
    }
}
