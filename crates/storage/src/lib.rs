//! # paxi-storage
//!
//! Durable replica state for the Paxi framework: an append-only write-ahead
//! log of CRC32-checked, length-prefixed records (the same framing the
//! socket transports use), with segment rotation, snapshot-plus-truncate
//! compaction, and configurable fsync policies — behind a [`Storage`] trait
//! with two backends:
//!
//! * [`FileStorage`] — real files, for the wall-clock runtimes in
//!   `paxi-transport`.
//! * [`MemStorage`] / [`MemHub`] — a deterministic in-memory "disk", for
//!   `paxi-sim`, so simulated crash-recovery runs stay bit-for-bit
//!   replayable and storage faults (torn tail writes, corrupted records,
//!   lost unsynced suffixes) can be injected on purpose.
//!
//! The durability model is deliberately pessimistic: bytes appended but not
//! yet synced are *lost* on a crash (as under power failure), which is what
//! makes `FsyncPolicy::Never` vs `FsyncPolicy::Always` an interesting
//! experiment rather than a no-op.

#![warn(missing_docs)]

pub mod file;
pub mod mem;
pub mod record;

pub use file::FileStorage;
pub use mem::{MemHub, MemStorage, StorageFault};
pub use record::{crc32, encode_record, scan_records, Damage};

use std::fmt;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every append is synced before it returns — nothing acknowledged is
    /// ever lost, at one sync per append.
    Always,
    /// Sync after `appends` buffered records, or once `interval_micros` has
    /// elapsed since the oldest unsynced append. The interval is checked on
    /// the next append *and* on [`Storage::tick`], which wall-clock runtimes
    /// drive periodically so a quiet replica's tail does not stay unsynced
    /// indefinitely. The deterministic in-memory backend counts appends
    /// alone (no wall clock to honor the interval).
    Batch {
        /// Unsynced appends that trigger a sync.
        appends: usize,
        /// Microseconds after which a sync is forced regardless of count.
        interval_micros: u64,
    },
    /// Never sync implicitly; a crash loses every append since the last
    /// explicit [`Storage::sync`] (or snapshot install).
    Never,
}

impl FsyncPolicy {
    /// A middle-of-the-road group-commit policy: sync every 8 appends or
    /// every millisecond, whichever comes first.
    pub fn batch8() -> Self {
        FsyncPolicy::Batch {
            appends: 8,
            interval_micros: 1_000,
        }
    }

    /// Short label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Batch { appends, .. } => format!("batch({appends})"),
            FsyncPolicy::Never => "never".into(),
        }
    }
}

/// Errors surfaced by a storage backend.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed (file backend only).
    Io(std::io::Error),
    /// A record larger than the framing layer allows was appended.
    RecordTooLarge(usize),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds MAX_FRAME"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Everything a recovering replica gets back from its storage.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The most recent snapshot installed, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Payloads of every intact WAL record appended after that snapshot,
    /// in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether the log tail was damaged (and repaired by truncation).
    pub damage: Damage,
}

/// A durable log + snapshot store for one replica.
///
/// Protocols append opaque payloads (their own serialized WAL records) at
/// persist-before-ack points; the backend batches and syncs them per its
/// [`FsyncPolicy`]. [`Storage::install_snapshot`] atomically replaces the
/// snapshot *and truncates the log* — compaction is the caller re-appending
/// whatever tail records it still needs afterwards.
pub trait Storage: Send {
    /// Appends one record. Depending on the fsync policy this may or may
    /// not be durable when it returns; see [`Storage::sync`].
    fn append(&mut self, payload: &[u8]) -> Result<(), StorageError>;

    /// Forces every buffered append to stable storage.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Time-driven sync check for batch policies: flushes buffered appends
    /// if the policy's interval bound has elapsed, and is a no-op otherwise
    /// (including for `Always` — nothing is ever buffered — and `Never` —
    /// which must only sync explicitly). Wall-clock runtimes call this
    /// periodically between events; the default does nothing, which is
    /// correct for backends without a wall clock.
    fn tick(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Atomically installs `snapshot` and truncates the WAL. Durable on
    /// return regardless of policy (a snapshot that can vanish is useless).
    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError>;

    /// Reads back the snapshot and the intact log suffix, truncating any
    /// torn or corrupt tail it finds.
    fn recover(&mut self) -> Result<Recovery, StorageError>;

    /// The backend's sync policy.
    fn policy(&self) -> FsyncPolicy;
}
