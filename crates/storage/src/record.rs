//! WAL record encoding: length-prefixed, CRC32-checked payloads.
//!
//! A record on disk is `paxi_codec::encode_frame(crc32(payload) ++ payload)`:
//! a 4-byte little-endian length prefix (the framing the socket transports
//! already use), followed by a 4-byte little-endian CRC32 of the payload,
//! followed by the payload bytes. The checksum is what lets recovery tell a
//! torn tail write (the machine died mid-append) from a record that was
//! fully written and then corrupted in place.

use paxi_codec::MAX_FRAME;

/// CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
///
/// Hand-rolled because no checksum crate is in the offline dependency set;
/// the constants match the ubiquitous zlib/PNG/Ethernet CRC so the values
/// are externally checkable.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes one WAL record: length prefix + CRC32 + payload.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + payload.len());
    body.extend_from_slice(&crc32(payload).to_le_bytes());
    body.extend_from_slice(payload);
    paxi_codec::encode_frame(&body)
}

/// What a recovery scan found at the tail of a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Damage {
    /// Every record intact; the log ends exactly at a record boundary.
    #[default]
    Clean,
    /// The final record is incomplete — a write was interrupted mid-append.
    /// The partial suffix is discarded.
    TornTail,
    /// A record failed its CRC check (or carried an impossible length). The
    /// record and everything after it are discarded: once one record is bad
    /// the writer's ordering guarantee says nothing about what follows.
    Corrupt,
}

/// Result of scanning a raw log buffer.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether (and how) the tail was damaged.
    pub damage: Damage,
    /// Byte length of the valid prefix — truncate the log here to repair it.
    pub valid_len: usize,
}

/// Scans `buf` for consecutive records, stopping at the first torn or
/// corrupt one. Never panics, whatever the input bytes.
pub fn scan_records(buf: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < 4 {
            out.damage = Damage::TornTail;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if len < 4 || len > MAX_FRAME {
            // A record body always starts with a 4-byte CRC; anything
            // shorter (or absurdly long) is not a length a writer produced.
            out.damage = Damage::Corrupt;
            break;
        }
        if rest.len() < 4 + len {
            out.damage = Damage::TornTail;
            break;
        }
        let body = &rest[4..4 + len];
        let want = u32::from_le_bytes(body[..4].try_into().unwrap());
        let payload = &body[4..];
        if crc32(payload) != want {
            out.damage = Damage::Corrupt;
            break;
        }
        out.records.push(payload.to_vec());
        pos += 4 + len;
        out.valid_len = pos;
    }
    out
}

/// Byte spans `(start, end)` of every intact record in `buf`, in order.
/// Used by fault injection to aim a torn write or bit flip at a record.
pub fn record_spans(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos + 4 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        if len < 4 || len > MAX_FRAME || pos + 4 + len > buf.len() {
            break;
        }
        spans.push((pos, pos + 4 + len));
        pos += 4 + len;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE CRC32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_records() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_record(b"alpha"));
        log.extend_from_slice(&encode_record(b""));
        log.extend_from_slice(&encode_record(&[0xFFu8; 300]));
        let out = scan_records(&log);
        assert_eq!(out.damage, Damage::Clean);
        assert_eq!(out.valid_len, log.len());
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0], b"alpha");
        assert_eq!(out.records[1], b"");
        assert_eq!(out.records[2], vec![0xFFu8; 300]);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let mut log = encode_record(b"keep me");
        let keep = log.len();
        let torn = encode_record(b"half written record");
        log.extend_from_slice(&torn[..torn.len() / 2]);
        let out = scan_records(&log);
        assert_eq!(out.damage, Damage::TornTail);
        assert_eq!(out.valid_len, keep);
        assert_eq!(out.records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn corrupt_record_is_detected_and_stops_the_scan() {
        let mut log = encode_record(b"good");
        let keep = log.len();
        log.extend_from_slice(&encode_record(b"about to rot"));
        log.extend_from_slice(&encode_record(b"unreachable"));
        // Flip a payload byte of the middle record.
        log[keep + 9] ^= 0x40;
        let out = scan_records(&log);
        assert_eq!(out.damage, Damage::Corrupt);
        assert_eq!(out.valid_len, keep);
        assert_eq!(out.records, vec![b"good".to_vec()]);
    }

    #[test]
    fn scan_never_panics_on_garbage() {
        for seed in 0u8..=50 {
            let junk: Vec<u8> = (0..97)
                .map(|i| seed.wrapping_mul(31).wrapping_add(i))
                .collect();
            let _ = scan_records(&junk);
            let _ = record_spans(&junk);
        }
        let _ = scan_records(&[0xFF; 3]);
        let _ = scan_records(&u32::MAX.to_le_bytes());
    }
}
