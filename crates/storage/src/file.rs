//! File-backed storage for the wall-clock runtimes.
//!
//! Layout under the replica's directory:
//!
//! ```text
//! <dir>/snapshot.bin      # u64 WAL epoch + last installed snapshot (tmp + rename)
//! <dir>/wal-000001.log    # WAL segments, rotated at ~1 MiB
//! <dir>/wal-000002.log
//! ```
//!
//! The snapshot header records the WAL epoch — the lowest segment sequence
//! written after the snapshot — so an `install_snapshot` interrupted between
//! the snapshot rename and the old-segment deletions cannot leak stale
//! records into a later recovery: segments below the epoch are ignored and
//! deleted. The directory itself is fsynced after renames, segment
//! creations, and deletions, so those survive power loss too.
//!
//! Appends are buffered in memory until a sync is due per the
//! [`FsyncPolicy`]; only a sync writes them to the active segment and
//! `fsync`s it. There is deliberately **no** flush-on-drop: a handle that
//! dies (process crash, amnesia fault) loses exactly its unsynced suffix,
//! which is the durability model the recovery tests exercise.

use crate::record::{encode_record, scan_records, Damage};
use crate::{FsyncPolicy, Recovery, Storage, StorageError};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Rotate the active segment once its synced size passes this.
const SEGMENT_LIMIT: u64 = 1 << 20;

/// `snapshot.bin` starts with a little-endian u64 WAL epoch: the lowest
/// segment sequence number written *after* the snapshot was installed.
/// Recovery ignores (and deletes) segments below it — they predate the
/// snapshot and only survive a crash that interrupted `install_snapshot`
/// between the snapshot rename and the segment deletions.
const SNAPSHOT_HEADER: usize = 8;

/// Durable log + snapshot store in one directory.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_limit: u64,
    active_seq: u64,
    active: Option<File>,
    active_len: u64,
    unsynced: Vec<u8>,
    unsynced_appends: usize,
    oldest_unsynced: Option<Instant>,
}

impl FileStorage {
    /// Opens (creating if needed) the store under `dir`.
    pub fn open(dir: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Self, StorageError> {
        Self::open_with_segment_limit(dir, policy, SEGMENT_LIMIT)
    }

    /// Opens (creating if needed) the WAL namespace `namespace` under
    /// `root` — a sub-store in its own directory with independent segments,
    /// snapshots, and compaction. Sharded deployments open one namespace per
    /// consensus group (e.g. `root/node-0.1/group-3`), so a node's groups
    /// recover independently while sharing one storage root.
    pub fn open_namespaced(
        root: impl AsRef<Path>,
        namespace: &str,
        policy: FsyncPolicy,
    ) -> Result<Self, StorageError> {
        Self::open(root.as_ref().join(namespace), policy)
    }

    /// Like [`FileStorage::open`] with an explicit rotation threshold
    /// (small limits make rotation testable).
    pub fn open_with_segment_limit(
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
        segment_limit: u64,
    ) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let last = Self::segments(&dir)?
            .last()
            .map(|&(seq, _)| seq)
            .unwrap_or(0);
        // New segments must never be numbered below the snapshot epoch, or
        // recovery would discard them as pre-snapshot leftovers.
        let epoch = Self::snapshot_epoch(&dir)?;
        Ok(FileStorage {
            dir,
            policy,
            segment_limit: segment_limit.max(1),
            // Never reopen an old segment for writing: recovery may have
            // truncated it, and a fresh file keeps the append path simple.
            active_seq: (last + 1).max(epoch),
            active: None,
            active_len: 0,
            unsynced: Vec::new(),
            unsynced_appends: 0,
            oldest_unsynced: None,
        })
    }

    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot.bin")
    }

    /// The WAL epoch recorded in the snapshot header (0 when there is no
    /// snapshot, or one too short to carry a header).
    fn snapshot_epoch(dir: &Path) -> Result<u64, StorageError> {
        let path = Self::snapshot_path(dir);
        if !path.exists() {
            return Ok(0);
        }
        let mut buf = [0u8; SNAPSHOT_HEADER];
        match File::open(&path)?.read_exact(&mut buf) {
            Ok(()) => Ok(u64::from_le_bytes(buf)),
            Err(_) => Ok(0),
        }
    }

    /// Fsyncs the directory itself, making renames, creations, and
    /// deletions of its entries durable.
    fn sync_dir(dir: &Path) -> Result<(), StorageError> {
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    fn segment_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("wal-{seq:06}.log"))
    }

    /// WAL segments under `dir`, in ascending sequence order.
    fn segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((seq, entry.path()));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    fn flush(&mut self) -> Result<(), StorageError> {
        if self.unsynced.is_empty() {
            return Ok(());
        }
        if self.active.is_none() {
            let path = Self::segment_path(&self.dir, self.active_seq);
            let f = OpenOptions::new().create(true).append(true).open(&path)?;
            // Make the new segment's directory entry durable: a synced
            // record in a file the directory forgot is a record lost.
            Self::sync_dir(&self.dir)?;
            self.active_len = f.metadata()?.len();
            self.active = Some(f);
        }
        let f = self.active.as_mut().expect("active segment just ensured");
        f.write_all(&self.unsynced)?;
        f.sync_data()?;
        self.active_len += self.unsynced.len() as u64;
        self.unsynced.clear();
        self.unsynced_appends = 0;
        self.oldest_unsynced = None;
        if self.active_len >= self.segment_limit {
            self.active = None;
            self.active_seq += 1;
            self.active_len = 0;
        }
        Ok(())
    }

    fn sync_due(&self) -> bool {
        match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch {
                appends,
                interval_micros,
            } => {
                self.unsynced_appends >= appends.max(1)
                    || self
                        .oldest_unsynced
                        .is_some_and(|t| t.elapsed().as_micros() as u64 >= interval_micros)
            }
            FsyncPolicy::Never => false,
        }
    }
}

impl Storage for FileStorage {
    fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        if payload.len() + 4 > paxi_codec::MAX_FRAME {
            return Err(StorageError::RecordTooLarge(payload.len()));
        }
        self.unsynced.extend_from_slice(&encode_record(payload));
        self.unsynced_appends += 1;
        self.oldest_unsynced.get_or_insert_with(Instant::now);
        if self.sync_due() {
            self.flush()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.flush()
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        // Every segment on disk is numbered <= active_seq, so stamping the
        // next sequence as the epoch marks them all as superseded the
        // instant the rename below lands.
        let epoch = self.active_seq + 1;
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&epoch.to_le_bytes())?;
            f.write_all(snapshot)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, Self::snapshot_path(&self.dir))?;
        // The rename must survive power loss before the old log goes: a
        // crash past this point leaves stale segments behind, but recovery
        // ignores anything below the epoch.
        Self::sync_dir(&self.dir)?;
        // The log is now redundant up to this snapshot: truncate it all.
        // The caller re-appends whatever tail it still needs.
        self.active = None;
        self.unsynced.clear();
        self.unsynced_appends = 0;
        self.oldest_unsynced = None;
        self.active_len = 0;
        for (_, path) in Self::segments(&self.dir)? {
            fs::remove_file(path)?;
        }
        Self::sync_dir(&self.dir)?;
        self.active_seq = epoch;
        Ok(())
    }

    fn recover(&mut self) -> Result<Recovery, StorageError> {
        let mut out = Recovery::default();
        let epoch = Self::snapshot_epoch(&self.dir)?;
        let snap_path = Self::snapshot_path(&self.dir);
        if snap_path.exists() {
            let mut buf = Vec::new();
            File::open(&snap_path)?.read_to_end(&mut buf)?;
            if buf.len() >= SNAPSHOT_HEADER {
                out.snapshot = Some(buf[SNAPSHOT_HEADER..].to_vec());
            }
        }
        let mut dir_dirty = false;
        let segments = Self::segments(&self.dir)?;
        for (i, (seq, path)) in segments.iter().enumerate() {
            if *seq < epoch {
                // Pre-snapshot leftovers: install_snapshot crashed between
                // the snapshot rename and the segment deletions. Their
                // records are covered by the snapshot (and replaying them on
                // top of it could regress state) — finish the deletion.
                fs::remove_file(path)?;
                dir_dirty = true;
                continue;
            }
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            let scan = scan_records(&buf);
            out.records.extend(scan.records);
            if scan.damage != Damage::Clean {
                out.damage = scan.damage;
                // Repair in place: truncate this segment to its valid
                // prefix and drop every later segment — nothing after the
                // damage point can be trusted.
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(scan.valid_len as u64)?;
                f.sync_data()?;
                for (_, later) in &segments[i + 1..] {
                    fs::remove_file(later)?;
                }
                dir_dirty = true;
                break;
            }
        }
        if dir_dirty {
            Self::sync_dir(&self.dir)?;
        }
        // Append after the surviving segments, never into them — and never
        // below the snapshot epoch, which marks lower sequences as stale.
        let last = Self::segments(&self.dir)?
            .last()
            .map(|&(seq, _)| seq)
            .unwrap_or(0);
        self.active = None;
        self.active_len = 0;
        self.active_seq = (last + 1).max(epoch);
        Ok(out)
    }

    fn tick(&mut self) -> Result<(), StorageError> {
        if let FsyncPolicy::Batch { interval_micros, .. } = self.policy {
            if self
                .oldest_unsynced
                .is_some_and(|t| t.elapsed().as_micros() as u64 >= interval_micros)
            {
                self.flush()?;
            }
        }
        Ok(())
    }

    fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("paxi-storage-{}-{tag}-{n}", std::process::id()))
    }

    fn payloads(r: &Recovery) -> Vec<&[u8]> {
        r.records.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"one").unwrap();
            s.append(b"two").unwrap();
        }
        let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(payloads(&r), vec![b"one".as_slice(), b"two"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_an_unsynced_handle_loses_exactly_the_suffix() {
        let dir = temp_dir("never");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Never).unwrap();
            s.append(b"durable").unwrap();
            s.sync().unwrap();
            s.append(b"doomed").unwrap();
            // Dropped without sync: "doomed" must not reach the disk.
        }
        let r = FileStorage::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(payloads(&r), vec![b"durable".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_write_is_detected_and_truncated() {
        let dir = temp_dir("torn");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"keep").unwrap();
            s.append(b"torn-away").unwrap();
        }
        // Tear the tail: chop the last few bytes off the only segment.
        let seg = FileStorage::segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.damage, Damage::TornTail);
        assert_eq!(payloads(&r), vec![b"keep".as_slice()]);
        // The damaged suffix was truncated on disk too.
        let r2 = FileStorage::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r2.damage, Damage::Clean);
        assert_eq!(payloads(&r2), vec![b"keep".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_is_detected_and_truncated() {
        let dir = temp_dir("corrupt");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"keep").unwrap();
            s.append(b"rot-me").unwrap();
        }
        let seg = FileStorage::segments(&dir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 2; // inside the final record's payload
        bytes[last] ^= 0x80;
        fs::write(&seg, &bytes).unwrap();
        let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
        let r = s.recover().unwrap();
        assert_eq!(r.damage, Damage::Corrupt);
        assert_eq!(payloads(&r), vec![b"keep".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_recover_in_order() {
        let dir = temp_dir("rotate");
        {
            let mut s =
                FileStorage::open_with_segment_limit(&dir, FsyncPolicy::Always, 64).unwrap();
            for i in 0..20u8 {
                s.append(&[i; 16]).unwrap();
            }
        }
        assert!(
            FileStorage::segments(&dir).unwrap().len() > 1,
            "a 64-byte limit must rotate segments"
        );
        let r = FileStorage::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r.damage, Damage::Clean);
        assert_eq!(r.records.len(), 20);
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec, &vec![i as u8; 16]);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_segments_from_an_interrupted_snapshot_install_are_ignored() {
        let dir = temp_dir("stale");
        let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
        s.append(b"pre-1").unwrap();
        s.append(b"pre-2").unwrap();
        // Keep a copy of the pre-snapshot segment: a crash between the
        // snapshot rename and the segment deletion would leave it behind.
        let seg = FileStorage::segments(&dir).unwrap().pop().unwrap().1;
        let stale = fs::read(&seg).unwrap();
        s.install_snapshot(b"SNAP").unwrap();
        s.append(b"post").unwrap();
        fs::write(&seg, &stale).unwrap(); // resurrect the stale segment
        let r = FileStorage::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP".as_slice()));
        assert_eq!(
            payloads(&r),
            vec![b"post".as_slice()],
            "pre-snapshot records must not replay on top of the snapshot"
        );
        assert!(!seg.exists(), "recovery finishes the interrupted deletion");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_after_reopening_a_snapshotted_store_are_not_stale() {
        let dir = temp_dir("epoch-reopen");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"old").unwrap();
            s.install_snapshot(b"SNAP").unwrap();
        }
        {
            // A fresh handle must number its segments at or above the epoch,
            // or recovery would discard its appends as pre-snapshot junk.
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"new").unwrap();
        }
        let r = FileStorage::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP".as_slice()));
        assert_eq!(payloads(&r), vec![b"new".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tick_flushes_a_quiet_batch_tail_after_the_interval() {
        let dir = temp_dir("tick");
        {
            let mut s = FileStorage::open(
                &dir,
                FsyncPolicy::Batch { appends: 100, interval_micros: 1_000 },
            )
            .unwrap();
            s.append(b"quiet-tail").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
            s.tick().unwrap();
            // Dropped without an explicit sync: only the tick made it
            // durable.
        }
        let r = FileStorage::open(&dir, FsyncPolicy::Never)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(payloads(&r), vec![b"quiet-tail".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_replaces_the_log() {
        let dir = temp_dir("snapshot");
        {
            let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
            s.append(b"old-1").unwrap();
            s.append(b"old-2").unwrap();
            s.install_snapshot(b"SNAP").unwrap();
            s.append(b"new-1").unwrap();
        }
        let r = FileStorage::open(&dir, FsyncPolicy::Always)
            .unwrap()
            .recover()
            .unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"SNAP".as_slice()));
        assert_eq!(payloads(&r), vec![b"new-1".as_slice()]);
        fs::remove_dir_all(&dir).ok();
    }
}
