//! The deserializer for the format in [`crate::ser`].

use crate::error::{CodecError, Result};
use serde::de::{self, DeserializeOwned, DeserializeSeed, IntoDeserializer, Visitor};

/// Deserializes a value from `bytes`, requiring the input to be fully
/// consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError::TrailingBytes(de.input.len()));
    }
    Ok(value)
}

/// Deserializes a value from the front of `bytes`, returning it together
/// with the number of bytes consumed.
pub fn from_bytes_prefix<T: DeserializeOwned>(bytes: &[u8]) -> Result<(T, usize)> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    Ok((value, bytes.len() - de.input.len()))
}

struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(CodecError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_len(&mut self) -> Result<usize> {
        let len = self.get_u32()? as usize;
        // A length can never exceed what's left in the buffer (each element
        // takes at least one byte for most types; zero-sized elements are
        // rare but legal, so only guard against absurd values).
        if len > self.input.len().saturating_mul(8).saturating_add(64) {
            return Err(CodecError::Invalid(format!("implausible length {len}")));
        }
        Ok(len)
    }
}

macro_rules! de_fixed {
    ($fn:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $fn<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
            let bytes = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(bytes.try_into().unwrap()))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::Invalid(format!("bool byte {b}"))),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8, 1);
    de_fixed!(deserialize_i16, visit_i16, i16, 2);
    de_fixed!(deserialize_i32, visit_i32, i32, 4);
    de_fixed!(deserialize_i64, visit_i64, i64, 8);
    de_fixed!(deserialize_u16, visit_u16, u16, 2);
    de_fixed!(deserialize_u32, visit_u32, u32, 4);
    de_fixed!(deserialize_u64, visit_u64, u64, 8);
    de_fixed!(deserialize_f32, visit_f32, f32, 4);
    de_fixed!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.get_u8()?)
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let v = self.get_u32()?;
        let c = char::from_u32(v).ok_or_else(|| CodecError::Invalid(format!("char {v:#x}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_str(std::str::from_utf8(bytes).map_err(CodecError::Utf8)?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::Invalid(format!("option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::NotSelfDescribing)
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(CodecError::NotSelfDescribing)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;
    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let idx = self.de.get_u32()?;
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<()> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}
