//! Codec errors.

use std::fmt;

/// Errors produced while encoding or decoding.
#[derive(Debug)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Eof,
    /// A length prefix or enum tag was out of range.
    Invalid(String),
    /// Bytes that should be UTF-8 were not.
    Utf8(std::str::Utf8Error),
    /// `deserialize_any` was attempted: the format is not self-describing.
    NotSelfDescribing,
    /// Custom error raised by a `Serialize`/`Deserialize` impl.
    Custom(String),
    /// Trailing bytes remained after deserialization finished.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Invalid(s) => write!(f, "invalid encoding: {s}"),
            CodecError::Utf8(e) => write!(f, "invalid utf-8: {e}"),
            CodecError::NotSelfDescribing => {
                write!(f, "paxi-codec is not self-describing; deserialize_any unsupported")
            }
            CodecError::Custom(s) => write!(f, "{s}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

/// Codec result alias.
pub type Result<T> = std::result::Result<T, CodecError>;
