//! # paxi-codec
//!
//! A compact binary serde format plus length-prefixed framing, used by the
//! wall-clock socket transports in `paxi-transport` to put protocol messages
//! on the wire. Written in-repo because `bincode` is not in the offline
//! dependency set; the format is deterministic and stable across builds.
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Ping { seq: u64, note: String }
//!
//! let msg = Ping { seq: 7, note: "hi".into() };
//! let bytes = paxi_codec::to_bytes(&msg).unwrap();
//! let back: Ping = paxi_codec::from_bytes(&bytes).unwrap();
//! assert_eq!(msg, back);
//! ```

#![warn(missing_docs)]

pub mod de;
pub mod error;
pub mod frame;
pub mod ser;

pub use de::{from_bytes, from_bytes_prefix};
pub use error::{CodecError, Result};
pub use frame::{encode_frame, encode_frame_into, FrameDecoder, MAX_FRAME};
pub use ser::{to_bytes, to_bytes_into, to_writer};

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    fn roundtrip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = crate::to_bytes(v).unwrap();
        let back: T = crate::from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i32);
        roundtrip(&3.5f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&'λ');
        roundtrip(&"hello world".to_string());
        roundtrip(&String::new());
    }

    #[test]
    fn collections() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u8>::new());
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&(1u8, "two".to_string(), 3.0f32));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        roundtrip(&m);
        let mut h = HashMap::new();
        h.insert(5u64, vec![1u8, 2]);
        roundtrip(&h);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Proto {
        Unit,
        New(u64),
        Tuple(u8, String),
        Struct { a: Option<Vec<u8>>, b: i16 },
    }

    #[test]
    fn enums() {
        roundtrip(&Proto::Unit);
        roundtrip(&Proto::New(9));
        roundtrip(&Proto::Tuple(1, "x".into()));
        roundtrip(&Proto::Struct { a: Some(vec![1, 2, 3]), b: -5 });
        roundtrip(&vec![Proto::Unit, Proto::New(1), Proto::Struct { a: None, b: 0 }]);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = crate::to_bytes(&"hello".to_string()).unwrap();
        let r: crate::Result<String> = crate::from_bytes(&bytes[..bytes.len() - 1]);
        assert!(r.is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = crate::to_bytes(&7u32).unwrap();
        bytes.push(0);
        let r: crate::Result<u32> = crate::from_bytes(&bytes);
        assert!(matches!(r, Err(crate::CodecError::TrailingBytes(1))));
    }

    #[test]
    fn prefix_decoding_reports_consumed() {
        let mut bytes = crate::to_bytes(&11u16).unwrap();
        bytes.extend_from_slice(&crate::to_bytes(&22u16).unwrap());
        let (a, used): (u16, usize) = crate::from_bytes_prefix(&bytes).unwrap();
        assert_eq!((a, used), (11, 2));
        let (b, _): (u16, usize) = crate::from_bytes_prefix(&bytes[used..]).unwrap();
        assert_eq!(b, 22);
    }

    #[test]
    fn bogus_enum_tag_rejected() {
        let bytes = 999u32.to_le_bytes().to_vec();
        let r: crate::Result<Proto> = crate::from_bytes(&bytes);
        assert!(r.is_err());
    }
}
