//! The serializer: a compact, non-self-describing binary format.
//!
//! Layout rules (little-endian throughout):
//! * fixed-width integers and floats are written verbatim;
//! * `bool` is one byte (0/1);
//! * `char` is its scalar value as `u32`;
//! * strings, byte slices, sequences, and maps are a `u32` length followed by
//!   their elements;
//! * `Option` is a one-byte tag (0 = `None`, 1 = `Some`) followed by the
//!   value;
//! * enum variants are their `u32` variant index followed by the payload;
//! * structs and tuples are their fields in order, with no framing.
//!
//! The format is equivalent in spirit to `bincode` (unavailable offline),
//! deterministic, and stable across builds of this repository.

use crate::error::{CodecError, Result};
use serde::ser::{self, Serialize};

/// Serializes `value` into a fresh byte vector.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    value.serialize(&mut Serializer { out: &mut out })?;
    Ok(out)
}

/// Serializes `value`, appending to `out`.
pub fn to_writer<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    value.serialize(&mut Serializer { out })
}

/// Serializes `value` into a reusable buffer, appending to `out`.
///
/// Functionally identical to [`to_writer`]; this is the name the hot paths
/// use when the point is allocation reuse — callers keep one `Vec` alive,
/// `clear()` it between messages, and never pay a fresh allocation per
/// encode the way [`to_bytes`] does.
pub fn to_bytes_into<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    to_writer(out, value)
}

struct Serializer<'a> {
    out: &'a mut Vec<u8>,
}

impl Serializer<'_> {
    fn put_len(&mut self, len: usize) -> Result<()> {
        let len = u32::try_from(len)
            .map_err(|_| CodecError::Invalid(format!("length {len} exceeds u32")))?;
        self.out.extend_from_slice(&len.to_le_bytes());
        Ok(())
    }
}

impl<'a> ser::Serializer for &'a mut Serializer<'_> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        let len = len.ok_or_else(|| {
            CodecError::Invalid("sequences must have a known length".to_string())
        })?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        let len =
            len.ok_or_else(|| CodecError::Invalid("maps must have a known length".to_string()))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident) => {
        impl $trait for &mut Serializer<'_> {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut Serializer<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Serializer<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Serializer<'_> {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<()> {
        Ok(())
    }
}
