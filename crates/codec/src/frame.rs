//! Length-prefixed framing for byte streams.
//!
//! TCP delivers a byte stream, not messages, so the socket transports wrap
//! every encoded message in a 4-byte little-endian length prefix.
//! [`FrameDecoder`] accumulates arbitrary chunks (as delivered by `read`)
//! and yields complete frames.

use crate::error::{CodecError, Result};
use bytes::{Buf, BytesMut};

/// Largest frame we accept; protects against corrupt prefixes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Prefixes `payload` with its `u32` length.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly over a byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes received from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(CodecError::Invalid(format!("frame of {len} bytes exceeds MAX_FRAME")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let frame = self.buf.split_to(len);
        Ok(Some(frame.to_vec()))
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut d = FrameDecoder::new();
        d.feed(&encode_frame(b"hello"));
        assert_eq!(d.next_frame().unwrap().unwrap(), b"hello");
        assert!(d.next_frame().unwrap().is_none());
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn reassembles_across_chunks() {
        let frame = encode_frame(&vec![7u8; 1000]);
        let mut d = FrameDecoder::new();
        for chunk in frame.chunks(13) {
            d.feed(chunk);
        }
        assert_eq!(d.next_frame().unwrap().unwrap().len(), 1000);
    }

    #[test]
    fn splits_coalesced_frames() {
        let mut bytes = encode_frame(b"a");
        bytes.extend_from_slice(&encode_frame(b"bb"));
        bytes.extend_from_slice(&encode_frame(b""));
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_frame().unwrap().unwrap(), b"a");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"bb");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut d = FrameDecoder::new();
        d.feed(&(u32::MAX).to_le_bytes());
        d.feed(&[0u8; 16]);
        assert!(d.next_frame().is_err());
    }
}
