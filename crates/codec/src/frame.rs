//! Length-prefixed framing for byte streams.
//!
//! TCP delivers a byte stream, not messages, so the socket transports wrap
//! every encoded message in a 4-byte little-endian length prefix.
//! [`FrameDecoder`] accumulates arbitrary chunks (as delivered by `read`)
//! and yields complete frames.

use crate::error::{CodecError, Result};
use bytes::{Buf, BytesMut};
use serde::Serialize;

/// Largest frame we accept; protects against corrupt prefixes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Prefixes `payload` with its `u32` length.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Serializes `value` directly into `out` as a length-prefixed frame,
/// appending. A 4-byte placeholder is reserved, the value serialized in
/// place via [`crate::to_bytes_into`], and the prefix patched — one buffer,
/// zero intermediate copies. Callers on the hot path keep `out` alive across
/// messages so encoding stops allocating entirely.
pub fn encode_frame_into<T: Serialize + ?Sized>(out: &mut Vec<u8>, value: &T) -> Result<()> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    crate::ser::to_bytes_into(out, value)?;
    let payload = out.len() - start - 4;
    if payload > MAX_FRAME {
        out.truncate(start);
        return Err(CodecError::Invalid(format!("frame of {payload} bytes exceeds MAX_FRAME")));
    }
    out[start..start + 4].copy_from_slice(&(payload as u32).to_le_bytes());
    Ok(())
}

/// Incremental frame reassembly over a byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes received from the stream.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(CodecError::Invalid(format!("frame of {len} bytes exceeds MAX_FRAME")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let frame = self.buf.split_to(len);
        Ok(Some(frame.to_vec()))
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut d = FrameDecoder::new();
        d.feed(&encode_frame(b"hello"));
        assert_eq!(d.next_frame().unwrap().unwrap(), b"hello");
        assert!(d.next_frame().unwrap().is_none());
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn reassembles_across_chunks() {
        let frame = encode_frame(&vec![7u8; 1000]);
        let mut d = FrameDecoder::new();
        for chunk in frame.chunks(13) {
            d.feed(chunk);
        }
        assert_eq!(d.next_frame().unwrap().unwrap().len(), 1000);
    }

    #[test]
    fn splits_coalesced_frames() {
        let mut bytes = encode_frame(b"a");
        bytes.extend_from_slice(&encode_frame(b"bb"));
        bytes.extend_from_slice(&encode_frame(b""));
        let mut d = FrameDecoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_frame().unwrap().unwrap(), b"a");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"bb");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn encode_frame_into_matches_two_step_encode() {
        let value = (7u64, "payload".to_string(), vec![1u8, 2, 3]);
        let two_step = encode_frame(&crate::to_bytes(&value).unwrap());
        let mut buf = vec![0xAA]; // pre-existing bytes must be preserved
        encode_frame_into(&mut buf, &value).unwrap();
        assert_eq!(&buf[..1], &[0xAA]);
        assert_eq!(&buf[1..], &two_step[..]);
        // Append a second frame into the same buffer and decode both back.
        encode_frame_into(&mut buf, &value).unwrap();
        let mut d = FrameDecoder::new();
        d.feed(&buf[1..]);
        for _ in 0..2 {
            let frame = d.next_frame().unwrap().unwrap();
            let back: (u64, String, Vec<u8>) = crate::from_bytes(&frame).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut d = FrameDecoder::new();
        d.feed(&(u32::MAX).to_le_bytes());
        d.feed(&[0u8; 16]);
        assert!(d.next_frame().is_err());
    }
}
