//! # paxi
//!
//! Umbrella crate re-exporting the whole Paxi workspace: the framework
//! building blocks, the deterministic simulator, the protocol
//! implementations, the analytic models, the benchmark harness, the
//! multi-group sharding runtime, and the wall-clock transports.

#![warn(missing_docs)]

pub use paxi_bench as bench;
pub use paxi_codec as codec;
pub use paxi_core as core;
pub use paxi_model as model;
pub use paxi_protocols as protocols;
pub use paxi_shard as shard;
pub use paxi_sim as sim;
pub use paxi_storage as storage;
pub use paxi_transport as transport;
