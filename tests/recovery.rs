//! Amnesia-crash recovery: durable WALs under the seeded nemesis.
//!
//! These tests flip the nemesis crash semantics from the original freeze
//! model (memory survives the outage) to amnesia (memory is wiped): every
//! replica runs with a WAL attached, persists before acknowledging, and a
//! crashed node is rebuilt from scratch by replaying its disk. Strong
//! consistency must survive exactly as it does under freeze — zero
//! anomalies, progress after heal — across the same seed battery as
//! `tests/nemesis.rs`. Alongside the nemesis suites, the storage facade is
//! exercised end to end: injected torn-tail and corrupt-record faults must
//! be detected and truncated on recovery, `FsyncPolicy::Never` must lose
//! exactly the unsynced suffix, and the protocols' real WAL record types
//! must round-trip through the file backend.

use paxi::bench::{run_nemesis, NemesisConfig, Proto};
use paxi::core::{Ballot, ClientId, ClusterConfig, Command, CrashMode, Nanos, NodeId, RequestId};
use paxi::protocols::epaxos::{EpaxosWal, IRef, WalStatus};
use paxi::protocols::paxos::PaxosWal;
use paxi::protocols::raft::{RaftConfig, RaftEntry, RaftWal};
use paxi::sim::SimConfig;
use paxi::storage::{Damage, FileStorage, FsyncPolicy, MemHub, Storage, StorageFault};

const SEEDS: [u64; 7] = [1, 2, 3, 5, 8, 13, 21];

fn lan_sim() -> SimConfig {
    SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::millis(3_900),
        ..SimConfig::default()
    }
}

fn amnesia(seed: u64) -> NemesisConfig {
    NemesisConfig { seed, crash_mode: CrashMode::Amnesia, ..Default::default() }
}

fn assert_clean(proto: &Proto, sim: SimConfig, cluster: ClusterConfig, cfg: NemesisConfig) {
    let out = run_nemesis(proto, sim, cluster, &cfg);
    assert!(
        out.anomalies.is_empty(),
        "{} seed {} digest {:#x}: {} anomalies, first {:?}\nschedule:\n{}",
        out.proto,
        out.seed,
        out.schedule.digest(),
        out.anomalies.len(),
        out.anomalies.first(),
        out.schedule.steps.join("\n"),
    );
    assert!(
        out.tail_completed > 0,
        "{} seed {}: no progress after heal\nschedule:\n{}",
        out.proto,
        out.seed,
        out.schedule.steps.join("\n"),
    );
}

#[test]
fn amnesia_nemesis_paxos_seven_seeds() {
    for seed in SEEDS {
        assert_clean(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), amnesia(seed));
    }
}

#[test]
fn amnesia_nemesis_epaxos_seven_seeds() {
    // Same wide key space as the freeze nemesis: EPaxos has no explicit
    // instance recovery, so rare conflicts keep wedged instances from
    // blocking the run. Recovery itself is exercised regardless — rebuilt
    // replicas replay their instance WAL and re-execute the commit graph.
    for seed in SEEDS {
        assert_clean(
            &Proto::epaxos(),
            lan_sim(),
            ClusterConfig::lan(5),
            NemesisConfig { keys: 64, ..amnesia(seed) },
        );
    }
}

#[test]
fn amnesia_nemesis_raft_three_seeds() {
    for seed in [4, 9, 16] {
        assert_clean(
            &Proto::Raft { cfg: RaftConfig::default(), cpu_penalty: 1.0 },
            lan_sim(),
            ClusterConfig::lan(5),
            amnesia(seed),
        );
    }
}

#[test]
fn same_amnesia_seed_replays_identically() {
    // Determinism must hold with the storage layer in the loop: the
    // in-memory disks, the fsync service-time charges, and the rebuild at
    // recovery are all part of the replayed state.
    let cfg = amnesia(42);
    let a = run_nemesis(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), &cfg);
    let b = run_nemesis(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), &cfg);
    assert_eq!(a.schedule.steps, b.schedule.steps);
    assert_eq!(a.schedule.digest(), b.schedule.digest());
    assert_eq!(a.completed, b.completed, "same seed must replay identically");
    assert_eq!(a.tail_completed, b.tail_completed);
}

#[test]
fn freeze_and_amnesia_schedules_share_placement_but_not_digest() {
    let freeze = run_nemesis(
        &Proto::paxos(),
        lan_sim(),
        ClusterConfig::lan(5),
        &NemesisConfig { seed: 11, ..Default::default() },
    );
    let amn = run_nemesis(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), &amnesia(11));
    assert_ne!(
        freeze.schedule.digest(),
        amn.schedule.digest(),
        "crash semantics must be part of the schedule fingerprint"
    );
    assert_eq!(freeze.schedule.steps.len(), amn.schedule.steps.len());
    assert!(freeze.passed() && amn.passed());
}

// --- storage facade: fault injection and durability semantics ---

fn payloads(records: &[Vec<u8>]) -> Vec<&[u8]> {
    records.iter().map(|v| v.as_slice()).collect()
}

#[test]
fn injected_torn_tail_is_detected_and_truncated() {
    let hub: MemHub<NodeId> = MemHub::new(FsyncPolicy::Always);
    let node = NodeId::new(0, 0);
    let mut disk = hub.open(node);
    disk.append(b"survives").unwrap();
    disk.append(b"torn-mid-write").unwrap();
    hub.inject(node, StorageFault::TornTail);
    hub.crash(&node);
    let r = hub.open(node).recover().unwrap();
    assert_eq!(r.damage, Damage::TornTail);
    assert_eq!(payloads(&r.records), vec![b"survives".as_slice()]);
    // The repair is durable: the next recovery is clean.
    let r2 = hub.open(node).recover().unwrap();
    assert_eq!(r2.damage, Damage::Clean);
    assert_eq!(payloads(&r2.records), vec![b"survives".as_slice()]);
}

#[test]
fn injected_crc_corruption_is_detected_and_truncated() {
    let hub: MemHub<NodeId> = MemHub::new(FsyncPolicy::Always);
    let node = NodeId::new(0, 1);
    let mut disk = hub.open(node);
    disk.append(b"survives").unwrap();
    disk.append(b"bit-rots").unwrap();
    hub.inject(node, StorageFault::CorruptRecord);
    hub.crash(&node);
    let r = hub.open(node).recover().unwrap();
    assert_eq!(r.damage, Damage::Corrupt);
    assert_eq!(payloads(&r.records), vec![b"survives".as_slice()]);
}

#[test]
fn fsync_never_loses_exactly_the_unsynced_suffix() {
    let hub: MemHub<NodeId> = MemHub::new(FsyncPolicy::Never);
    let node = NodeId::new(0, 2);
    let mut disk = hub.open(node);
    disk.append(b"acked-and-synced").unwrap();
    disk.sync().unwrap();
    disk.append(b"buffered-1").unwrap();
    disk.append(b"buffered-2").unwrap();
    assert!(hub.unsynced_len(&node) > 0);
    hub.crash(&node);
    let r = hub.open(node).recover().unwrap();
    // Exactly the unsynced suffix is gone: no more (the synced record
    // survives intact), no less (both buffered records are lost).
    assert_eq!(r.damage, Damage::Clean);
    assert_eq!(payloads(&r.records), vec![b"acked-and-synced".as_slice()]);
}

// --- protocol WAL record types over the file backend ---

fn file_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("paxi-recovery-{}-{tag}", std::process::id()))
}

#[test]
fn protocol_wal_records_round_trip_through_file_storage() {
    let dir = file_dir("wal-roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    let node = NodeId::new(1, 2);
    let req = Some(RequestId::new(ClientId(3), 9));
    let originals: Vec<Vec<u8>> = vec![
        paxi::codec::to_bytes(&PaxosWal::Ballot(Ballot { counter: 4, id: node })).unwrap(),
        paxi::codec::to_bytes(&PaxosWal::Accept {
            slot: 17,
            ballot: Ballot::first(node),
            cmds: vec![(Command::put(7, b"value".to_vec()), req)],
        })
        .unwrap(),
        paxi::codec::to_bytes(&RaftWal::Term { term: 3, voted_for: Some(node) }).unwrap(),
        paxi::codec::to_bytes(&RaftWal::Splice {
            prev_index: 5,
            entries: vec![RaftEntry { term: 3, cmd: Command::delete(8), req: None }],
        })
        .unwrap(),
        paxi::codec::to_bytes(&EpaxosWal {
            iref: IRef { leader: node, idx: 12 },
            cmd: Command::get(7),
            seq: 6,
            deps: vec![IRef { leader: NodeId::new(0, 0), idx: 11 }],
            status: WalStatus::Committed,
        })
        .unwrap(),
    ];
    {
        let mut s = FileStorage::open(&dir, FsyncPolicy::Always).unwrap();
        for rec in &originals {
            s.append(rec).unwrap();
        }
    }
    let r = FileStorage::open(&dir, FsyncPolicy::Always).unwrap().recover().unwrap();
    assert_eq!(r.damage, Damage::Clean);
    assert_eq!(r.records, originals, "bytes must survive the disk verbatim");
    // And the payloads still decode to the exact records that went in.
    let accept: PaxosWal = paxi::codec::from_bytes(&r.records[1]).unwrap();
    assert_eq!(
        accept,
        PaxosWal::Accept {
            slot: 17,
            ballot: Ballot::first(node),
            cmds: vec![(Command::put(7, b"value".to_vec()), req)],
        }
    );
    let epaxos: EpaxosWal = paxi::codec::from_bytes(&r.records[4]).unwrap();
    assert_eq!(epaxos.status, WalStatus::Committed);
    assert_eq!(epaxos.deps, vec![IRef { leader: NodeId::new(0, 0), idx: 11 }]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_under_never_loses_the_unsynced_wal_suffix() {
    let dir = file_dir("file-never");
    std::fs::remove_dir_all(&dir).ok();
    let node = NodeId::new(0, 0);
    let durable = paxi::codec::to_bytes(&PaxosWal::Ballot(Ballot::first(node))).unwrap();
    let doomed = paxi::codec::to_bytes(&PaxosWal::Ballot(Ballot { counter: 2, id: node })).unwrap();
    {
        let mut s = FileStorage::open(&dir, FsyncPolicy::Never).unwrap();
        s.append(&durable).unwrap();
        s.sync().unwrap();
        s.append(&doomed).unwrap();
        // Dropped without a sync: the process died with the record buffered.
    }
    let r = FileStorage::open(&dir, FsyncPolicy::Never).unwrap().recover().unwrap();
    assert_eq!(r.damage, Damage::Clean);
    assert_eq!(r.records, vec![durable]);
    std::fs::remove_dir_all(&dir).ok();
}
