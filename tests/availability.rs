//! Availability under failures (paper §1.2 and the Paxi availability tier).
//!
//! The paper's claim: in single-leader Paxos, failure of the leader causes
//! unavailability until re-election; in multi-leader protocols most requests
//! do not experience any disruption, because the failed leader is not on
//! their critical path.

use paxi::core::{ClusterConfig, FaultWindow, Nanos, NodeId};
use paxi::protocols::wpaxos::WPaxosConfig;
use paxi::sim::{ClientSetup, FaultPlan, SimConfig, Simulator, Topology};
use paxi_core::dist::Rng64;
use paxi_core::id::ClientId;
use paxi_core::Command;

fn writes(keys: u64) -> impl FnMut(ClientId, u8, u64, Nanos, &mut Rng64) -> Command {
    move |client: ClientId, zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        Command::put(zone as u64 * 1000 + rng.below(keys), paxi::sim::client::unique_value(client, seq))
    }
}

/// Completions in `[from, to)` of the report timeline.
fn completions_between(
    timeline: &[(Nanos, u64)],
    from: Nanos,
    to: Nanos,
) -> u64 {
    timeline.iter().filter(|(t, _)| *t >= from && *t < to).map(|(_, c)| *c).sum()
}

#[test]
fn paxos_leader_crash_causes_visible_outage_then_recovery() {
    use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 4);
    let cfg = SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::secs(5),
        client_retry: Some(Nanos::millis(500)),
        timeline_bucket: Some(Nanos::millis(100)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        paxos_cluster(
            cluster,
            PaxosConfig { election_timeout: Nanos::millis(400), ..Default::default() },
        ),
        writes(20),
        clients,
    );
    sim.faults_mut().crash(NodeId::new(0, 0), Nanos::secs(2), Nanos::secs(30));
    let report = sim.run();
    // Outage window right after the crash: far fewer completions than the
    // same-length window before it.
    let before = completions_between(&report.timeline, Nanos::millis(1_500), Nanos::secs(2));
    let outage = completions_between(&report.timeline, Nanos::secs(2), Nanos::millis(2_500));
    let after = completions_between(&report.timeline, Nanos::secs(4), Nanos::millis(4_500));
    assert!(outage < before / 4, "outage {outage} vs before {before}");
    assert!(after > before / 2, "service must recover: after {after} vs before {before}");
}

#[test]
fn wpaxos_remote_leader_crash_leaves_other_zones_undisturbed() {
    // Zones work on their own keys; crash zone 2's leader. Zones 0 and 1
    // keep committing with their local quorums — the failed leader is not on
    // their critical path (fz=0 quorums live entirely inside each zone).
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let cfg = SimConfig {
        topology: Topology::lan_zones(3),
        warmup: Nanos::millis(500),
        measure: Nanos::secs(4),
        timeline_bucket: Some(Nanos::millis(100)),
        record_ops: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        paxi::protocols::wpaxos::wpaxos_cluster(cluster, WPaxosConfig::default()),
        writes(20),
        clients,
    );
    sim.faults_mut().crash(NodeId::new(2, 0), Nanos::secs(2), Nanos::secs(30));
    let report = sim.run();
    // Zones 0 and 1 completed plenty of operations after the crash.
    let zone0 = report.ops.iter().filter(|o| o.ok && o.key < 1000 && o.ret > Nanos::secs(2)).count();
    let zone1 = report
        .ops
        .iter()
        .filter(|o| o.ok && (1000..2000).contains(&o.key) && o.ret > Nanos::secs(2))
        .count();
    assert!(zone0 > 500, "zone 0 post-crash ops {zone0}");
    assert!(zone1 > 500, "zone 1 post-crash ops {zone1}");
}

#[test]
fn paxos_tolerates_flaky_links() {
    // 10% random message loss between the leader and two followers: majority
    // quorums route around it (the remaining two followers + leader).
    use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 2);
    let cfg = SimConfig { measure: Nanos::secs(3), ..SimConfig::default() };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
        writes(20),
        clients,
    );
    for follower in [1u8, 2] {
        sim.faults_mut().flaky_link(
            NodeId::new(0, 0),
            NodeId::new(0, follower),
            0.1,
            Nanos::ZERO,
            Nanos::secs(60),
        );
        sim.faults_mut().flaky_link(
            NodeId::new(0, follower),
            NodeId::new(0, 0),
            0.1,
            Nanos::ZERO,
            Nanos::secs(60),
        );
    }
    let report = sim.run();
    assert!(report.completed > 1000, "completed {}", report.completed);
    assert_eq!(report.errors, 0);
}

#[test]
fn raft_survives_partition_heal() {
    use paxi::protocols::raft::{raft_cluster, RaftConfig};
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 2);
    let cfg = SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::secs(6),
        client_retry: Some(Nanos::millis(600)),
        timeline_bucket: Some(Nanos::millis(250)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        raft_cluster(cluster, RaftConfig::default()),
        writes(20),
        clients,
    );
    // Partition the leader + one follower away from the other three for 1.5s;
    // the majority side elects a new leader, then the partition heals.
    let minority = [NodeId::new(0, 0), NodeId::new(0, 1)];
    let majority = [NodeId::new(0, 2), NodeId::new(0, 3), NodeId::new(0, 4)];
    sim.faults_mut().partition(&minority, &majority, Nanos::secs(2), Nanos::millis(1_500));
    let report = sim.run();
    let late = completions_between(&report.timeline, Nanos::secs(5), Nanos::secs(7));
    assert!(late > 200, "post-heal completions {late}");
}

#[test]
fn epaxos_isolated_replica_rejoins_after_heal() {
    // Isolate one of five EPaxos replicas with an open-ended partition and
    // close it later via `heal` — the two APIs a nemesis uses when it does
    // not know the outage duration up front. The remaining four replicas
    // still form the fast quorum (4 of 5), so commits continue through the
    // outage, and the isolated node serves again after the heal.
    use paxi::protocols::epaxos::epaxos_cluster;
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let cfg = SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::secs(5),
        client_retry: Some(Nanos::millis(500)),
        timeline_bucket: Some(Nanos::millis(100)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg, cluster.clone(), epaxos_cluster(cluster), writes(20), clients);
    let isolated = NodeId::new(0, 4);
    let rest: Vec<NodeId> = (0..4).map(|i| NodeId::new(0, i)).collect();
    sim.faults_mut().partition_in(&[isolated], &rest, FaultWindow::until_end(Nanos::secs(1)));
    sim.faults_mut().heal(Nanos::secs(3));
    let report = sim.run();
    let during = completions_between(&report.timeline, Nanos::millis(1_500), Nanos::secs(3));
    let after = completions_between(&report.timeline, Nanos::millis(3_500), Nanos::secs(5));
    assert!(during > 300, "commits must continue through the partition: {during}");
    assert!(after > 300, "post-heal completions: {after}");
}

#[test]
fn slow_links_degrade_latency_without_stopping_progress() {
    let cluster = ClusterConfig::lan(3);
    let clients = ClientSetup::closed_per_zone(&cluster, 2);
    let cfg = SimConfig { measure: Nanos::secs(2), ..SimConfig::default() };
    let mk = |slow: bool| {
        let mut sim = Simulator::new(
            cfg.clone(),
            cluster.clone(),
            paxi::protocols::paxos::paxos_cluster(
                cluster.clone(),
                paxi::protocols::paxos::PaxosConfig::default(),
            ),
            writes(20),
            ClientSetup::closed_per_zone(&cluster, 2),
        );
        if slow {
            // Slow every leader->follower link by up to 2ms.
            for f in [1u8, 2] {
                sim.faults_mut().slow_link(
                    NodeId::new(0, 0),
                    NodeId::new(0, f),
                    Nanos::millis(2),
                    Nanos::ZERO,
                    Nanos::secs(60),
                );
            }
        }
        sim.run()
    };
    let _ = clients;
    let base = mk(false);
    let slowed = mk(true);
    assert!(slowed.completed > 300);
    assert!(
        slowed.latency.mean > base.latency.mean,
        "slow links must show up in latency: {} vs {}",
        slowed.latency.mean,
        base.latency.mean
    );
    // Fault plan predicate sanity: FaultPlan is exported for users.
    let _unused: FaultPlan = FaultPlan::new();
}
