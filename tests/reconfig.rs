//! Membership change under chaos: the mid-reconfiguration nemesis suites.
//!
//! Each suite runs a live membership change — a join (node 5 enters a
//! 5-of-6 cluster) or a leave (node 4 departs) — and fells a chosen victim
//! *inside* the transition window: the leader driving the change, the
//! joining node, or the departing node, in both freeze (memory survives)
//! and amnesia (memory wiped, WAL replayed) crash modes. Every run must
//! come out linearizable, make progress after healing, account for every
//! message loss (`unexplained == 0`), and finish the cut-over: a majority
//! of the target membership reports exactly the target configuration —
//! never the old one.
//!
//! The suites ride on the same determinism contract as the rest of the
//! harness: a failing `(proto, victim, mode, seed)` tuple replays
//! bit-for-bit, and the no-op fingerprint test pins the zero-cost property
//! — an elided add-then-remove-the-same-node change leaves the simulation
//! bit-identical to a static run.

use paxi::bench::{
    run, run_reconfig_nemesis, Proto, ReconfigConfig, ReconfigOutcome, ReconfigVictim,
};
use paxi::core::membership::ConfigChange;
use paxi::core::{ClusterConfig, CrashMode, FaultPlan, Nanos, NodeId};
use paxi::protocols::raft::RaftConfig;
use paxi::sim::client::uniform_workload;
use paxi::sim::{ClientSetup, FaultWindow, ReconfigWorkload, SimConfig};
use paxi::transport::{FaultInjector, LinkDecision};
use paxi_core::dist::Rng64;
use paxi_core::faults::MsgFate;
use paxi_core::id::ClientId;
use std::time::Duration;

const VICTIMS: [ReconfigVictim; 3] = [
    ReconfigVictim::Leader,
    ReconfigVictim::Joiner,
    ReconfigVictim::Leaver,
];

fn quick_sim() -> SimConfig {
    SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::millis(3_900),
        ..SimConfig::default()
    }
}

fn raft() -> Proto {
    Proto::Raft {
        cfg: RaftConfig::default(),
        cpu_penalty: 1.0,
    }
}

fn assert_clean(out: &ReconfigOutcome) {
    let ctx = format!(
        "{} victim={} mode={} seed={} digest={:#x}\nschedule:\n{}\nviews: {:?}",
        out.proto,
        out.victim.label(),
        out.mode.label(),
        out.seed,
        out.digest(),
        out.steps.join("\n"),
        out.final_members,
    );
    assert!(
        out.anomalies.is_empty(),
        "{} anomalies, first {:?}\n{ctx}",
        out.anomalies.len(),
        out.anomalies.first(),
    );
    assert!(out.tail_completed > 0, "no progress after heal\n{ctx}");
    assert_eq!(
        out.unexplained_drops, 0,
        "unattributed message losses\n{ctx}"
    );
    assert!(out.cut_over_complete(), "cut-over did not complete\n{ctx}");
}

fn run_suite(proto: &Proto, mode: CrashMode, seed: u64) {
    for victim in VICTIMS {
        let cfg = ReconfigConfig {
            seed,
            mode,
            ..Default::default()
        };
        assert_clean(&run_reconfig_nemesis(proto, quick_sim(), &cfg, victim));
    }
}

// --- the nemesis matrix: {Paxos, Raft} x {freeze, amnesia} x 3 victims ---

#[test]
fn paxos_reconfig_nemesis_freeze() {
    run_suite(&Proto::paxos(), CrashMode::Freeze, 1);
}

#[test]
fn paxos_reconfig_nemesis_amnesia() {
    run_suite(&Proto::paxos(), CrashMode::Amnesia, 1);
}

#[test]
fn raft_reconfig_nemesis_freeze() {
    run_suite(&raft(), CrashMode::Freeze, 1);
}

#[test]
fn raft_reconfig_nemesis_amnesia() {
    run_suite(&raft(), CrashMode::Amnesia, 1);
}

#[test]
fn second_seed_sweeps_the_leader_victim() {
    // The leader victim is the hardest cell (the change's proposer dies);
    // sweep it across an extra seed on both protocols and modes.
    for proto in [Proto::paxos(), raft()] {
        for mode in [CrashMode::Freeze, CrashMode::Amnesia] {
            let cfg = ReconfigConfig {
                seed: 7,
                mode,
                ..Default::default()
            };
            assert_clean(&run_reconfig_nemesis(
                &proto,
                quick_sim(),
                &cfg,
                ReconfigVictim::Leader,
            ));
        }
    }
}

// --- crash recovery: the amnesia victims rejoin in the NEW config ---

#[test]
fn amnesia_victim_rejoins_in_the_new_configuration_never_the_old() {
    // The joining node is wiped mid-transition and rebuilt from its WAL;
    // after healing it must hold exactly the target membership. The old
    // 5-node configuration (which does not contain the joiner) must appear
    // in nobody's view — a node that recovered "into the old config" would
    // report a member set without node 5.
    for proto in [Proto::paxos(), raft()] {
        let cfg = ReconfigConfig {
            seed: 1,
            mode: CrashMode::Amnesia,
            ..Default::default()
        };
        let out = run_reconfig_nemesis(&proto, quick_sim(), &cfg, ReconfigVictim::Joiner);
        assert_clean(&out);
        let joiner = NodeId::new(0, 5);
        assert!(out.target.contains(&joiner));
        let view = out.final_members[5].as_deref();
        assert_eq!(
            view,
            Some(out.target.as_slice()),
            "{}: recovered joiner must hold the target config, got {:?}",
            out.proto,
            view
        );
    }
}

// --- sim/live fate parity for mid-reconfiguration fault plans ---

#[test]
fn during_reconfig_plans_decide_identically_in_sim_and_live() {
    fn n(i: u8) -> NodeId {
        NodeId::new(0, i)
    }
    let reconfig_at = Nanos::millis(400);
    let transition = Nanos::millis(300);
    let mut plan = FaultPlan::new();
    plan.crash_mode_in(
        n(0),
        FaultWindow::during_reconfig(reconfig_at, transition),
        CrashMode::Freeze,
    );
    plan.crash_mode_in(
        n(5),
        FaultWindow::during_reconfig(reconfig_at, transition),
        CrashMode::Amnesia,
    );
    plan.flaky_link(n(1), n(2), 0.4, reconfig_at, transition);
    plan.slow_link(n(2), n(3), Nanos::millis(2), reconfig_at, transition);
    plan.heal(Nanos::millis(3_000));

    for seed in [1u64, 7, 1234] {
        let inj = FaultInjector::new(plan.clone(), seed);
        let mut sim_rng = Rng64::seed(seed);
        for q in 0..1_000u64 {
            let (src, dst) = match q % 4 {
                0 => (n(1), n(2)),
                1 => (n(2), n(3)),
                2 => (n(3), n(1)),
                _ => (n(1), n(3)),
            };
            let t = Nanos::millis(q * 3 % 1_500);
            let sim_fate = plan.message_fate(src, dst, t, &mut sim_rng);
            let expected = match sim_fate {
                MsgFate::Dropped => LinkDecision::Drop,
                MsgFate::Deliver { extra_delay } if extra_delay == Nanos::ZERO => {
                    LinkDecision::Deliver
                }
                MsgFate::Deliver { extra_delay } => {
                    LinkDecision::DeliverAfter(Duration::from_nanos(extra_delay.0))
                }
            };
            assert_eq!(
                inj.decide_link_at(src, dst, t),
                expected,
                "seed {seed} query {q} {src}->{dst} at {t:?}"
            );
        }
        // Crash windows agree too: inside the transition both victims are
        // down, outside nobody is.
        let mid = reconfig_at + Nanos(transition.0 / 2);
        assert!(plan.is_crashed(n(0), mid));
        assert!(plan.is_crashed(n(5), mid));
        assert!(!plan.is_crashed(n(0), reconfig_at + transition));
        assert!(!plan.is_crashed(n(1), mid));
    }
}

// --- determinism fingerprints ---

fn fingerprint(workload_reconfig: Option<ConfigChange>, seed: u64) -> (u64, u64, u64, String) {
    let cluster = ClusterConfig::lan(5);
    let sim = SimConfig {
        seed,
        warmup: Nanos::millis(200),
        measure: Nanos::secs(1),
        record_ops: true,
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let initial = cluster.all_nodes();
    let report = match workload_reconfig {
        Some(change) => {
            let w = ReconfigWorkload::new(
                uniform_workload(16),
                ClientId(0),
                Nanos::millis(500),
                change,
                &initial,
            );
            run(&Proto::paxos(), sim, cluster, w, clients)
        }
        None => run(&Proto::paxos(), sim, cluster, uniform_workload(16), clients),
    };
    let op_digest = report
        .ops
        .iter()
        .take(50)
        .map(|o| format!("{}:{}:{}", o.client, o.key, o.invoke.0))
        .collect::<Vec<_>>()
        .join(",");
    (
        report.completed,
        report.events_processed,
        report.latency.mean.0,
        op_digest,
    )
}

#[test]
fn noop_reconfig_fingerprint_matches_the_static_run() {
    // Adding and then removing the same non-member is a no-op change; the
    // workload elides it entirely, so the run must be bit-identical to a run
    // with no reconfiguration wrapper at all — reconfiguration support costs
    // a static cluster nothing. (The node must start outside the membership:
    // `remove` wins over `add`, so add+remove of a *member* is a leave.)
    let node = NodeId::new(0, 9);
    let noop = ConfigChange {
        add: vec![node],
        remove: vec![node],
    };
    assert!(noop.is_noop_on(&ClusterConfig::lan(5).all_nodes()));
    let a = fingerprint(Some(noop), 1234);
    let b = fingerprint(None, 1234);
    assert_eq!(
        a, b,
        "no-op reconfiguration must not perturb the simulation"
    );
}

#[test]
fn real_reconfig_replays_identically_under_the_same_seed() {
    let cfg = ReconfigConfig {
        seed: 42,
        ..Default::default()
    };
    let a = run_reconfig_nemesis(&Proto::paxos(), quick_sim(), &cfg, ReconfigVictim::Joiner);
    let b = run_reconfig_nemesis(&Proto::paxos(), quick_sim(), &cfg, ReconfigVictim::Joiner);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.completed, b.completed,
        "same seed must replay identically"
    );
    assert_eq!(a.tail_completed, b.tail_completed);
    assert_eq!(a.final_members, b.final_members);
}

// --- CI artifact: verdict digests for the reconfig-smoke job ---

#[test]
fn write_reconfig_digest_artifact() {
    let mut lines = Vec::new();
    for proto in [Proto::paxos(), raft()] {
        for victim in VICTIMS {
            let cfg = ReconfigConfig {
                seed: 1,
                ..Default::default()
            };
            let out = run_reconfig_nemesis(&proto, quick_sim(), &cfg, victim);
            lines.push(format!(
                "proto={} victim={} mode={} seed={} digest={:#018x} passed={}",
                out.proto,
                out.victim.label(),
                out.mode.label(),
                out.seed,
                out.digest(),
                out.passed(),
            ));
            assert!(out.passed(), "smoke cell failed: {}", lines.last().unwrap());
        }
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/reconfig_digests.txt", lines.join("\n") + "\n")
        .expect("write digest artifact");
}
