//! Chaos on the wall-clock transports: the live counterpart of the
//! simulator's fault injection.
//!
//! The same `FaultPlan` type drives both worlds. These tests check (a) the
//! decision layer is *identical* — a fixed seed yields the same message
//! fates whether the plan is consulted by the simulator or by the
//! transport's `FaultInjector` — and (b) a real cluster under `launch_chaotic`
//! stays linearizable through crashes, flaky links, and partitions, and
//! frozen nodes rejoin after their windows end.

use paxi::bench::check_linearizability;
use paxi::core::{ClusterConfig, FaultPlan, Nanos, NodeId};
use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi::sim::OpRecord;
use paxi::transport::{FaultInjector, InProcCluster, LinkDecision, TcpCluster};
use paxi_core::dist::Rng64;
use paxi_core::faults::MsgFate;
use std::time::Duration;

fn n(i: u8) -> NodeId {
    NodeId::new(0, i)
}

/// The sim consults `FaultPlan::message_fate` with its seeded RNG; the
/// transports consult `FaultInjector::decide_link_at` built from the same
/// plan and seed. For any shared query sequence the fates must agree —
/// this is what makes a live chaos run interpretable in sim terms.
#[test]
fn injector_fates_match_sim_fates_for_a_fixed_seed() {
    let mut plan = FaultPlan::new();
    plan.crash(n(3), Nanos::millis(100), Nanos::millis(400));
    plan.drop_link(n(0), n(1), Nanos::ZERO, Nanos::secs(2));
    plan.flaky_link(n(1), n(2), 0.35, Nanos::millis(50), Nanos::secs(2));
    plan.slow_link(n(2), n(0), Nanos::millis(2), Nanos::ZERO, Nanos::secs(2));

    for seed in [1u64, 7, 1234] {
        let inj = FaultInjector::new(plan.clone(), seed);
        let mut sim_rng = Rng64::seed(seed);
        for q in 0..1_000u64 {
            let (src, dst) = match q % 4 {
                0 => (n(0), n(1)),
                1 => (n(1), n(2)),
                2 => (n(2), n(0)),
                _ => (n(1), n(0)),
            };
            let t = Nanos::millis(q * 3 % 2_000);
            let sim_fate = plan.message_fate(src, dst, t, &mut sim_rng);
            let live = inj.decide_link_at(src, dst, t);
            let expected = match sim_fate {
                MsgFate::Dropped => LinkDecision::Drop,
                MsgFate::Deliver { extra_delay } if extra_delay == Nanos::ZERO => {
                    LinkDecision::Deliver
                }
                MsgFate::Deliver { extra_delay } => {
                    LinkDecision::DeliverAfter(Duration::from_nanos(extra_delay.0))
                }
            };
            assert_eq!(live, expected, "seed {seed} query {q} {src}->{dst} at {t:?}");
        }
    }
}

/// Drives one blocking client, recording every op with injector-relative
/// timestamps so the offline checker can consume the history.
fn drive(
    client: &mut paxi::transport::SyncClient<paxi::protocols::paxos::PaxosMsg>,
    inj: &FaultInjector,
    ops: &mut Vec<OpRecord>,
    until: Nanos,
    key_base: u64,
) {
    let mut i = 0u64;
    while inj.now() < until {
        let key = key_base + i % 3;
        let invoke = inj.now();
        if i % 2 == 0 {
            let value = paxi::sim::client::unique_value(client.id(), i);
            let resp = client.put(key, value.clone());
            let ok = resp.as_ref().map(|r| r.ok).unwrap_or(false);
            ops.push(OpRecord {
                client: client.id(),
                key,
                write: Some(value),
                read: None,
                invoke,
                ret: inj.now(),
                ok,
            });
        } else {
            let resp = client.get(key);
            let ok = resp.is_some();
            ops.push(OpRecord {
                client: client.id(),
                key,
                write: None,
                read: resp.map(|r| r.value),
                invoke,
                ret: inj.now(),
                ok,
            });
        }
        i += 1;
    }
}

#[test]
fn channel_cluster_stays_linearizable_through_crash_and_flaky_links() {
    let cluster = ClusterConfig::lan(3);
    let mut plan = FaultPlan::new();
    // A follower freezes for half a second while the leader's link to the
    // other follower is flaky; everything heals at 800ms.
    plan.crash(n(2), Nanos::millis(200), Nanos::millis(500));
    plan.flaky_link(n(0), n(1), 0.3, Nanos::millis(100), Nanos::millis(600));
    plan.flaky_link(n(1), n(0), 0.3, Nanos::millis(100), Nanos::millis(600));
    plan.heal(Nanos::millis(800));
    let injector = FaultInjector::new(plan, 0xC4A05);

    let run = InProcCluster::launch_chaotic(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
        injector.clone(),
    );
    let mut client = run.client(n(0));
    client.set_timeout(Duration::from_millis(300));

    let mut ops = Vec::new();
    drive(&mut client, &injector, &mut ops, Nanos::millis(1_500), 0);

    // Progress after the heal point.
    let heal = Nanos::millis(800);
    let tail_ok = ops.iter().filter(|o| o.ok && o.invoke >= heal).count();
    assert!(tail_ok > 0, "no successful ops after heal ({} total)", ops.len());

    // The frozen follower thawed: a request through it gets an answer.
    let mut via_thawed = run.client(n(2));
    via_thawed.set_timeout(Duration::from_secs(5));
    let resp = via_thawed.put(99, b"recovered".to_vec());
    assert!(resp.map(|r| r.ok).unwrap_or(false), "thawed node must serve again");

    let anomalies = check_linearizability(&ops);
    assert!(anomalies.is_empty(), "anomalies: {anomalies:?}");
    run.shutdown();
}

#[test]
fn tcp_cluster_survives_flaky_links_under_injection() {
    let cluster = ClusterConfig::lan(3);
    let mut plan = FaultPlan::new();
    plan.flaky_link(n(0), n(1), 0.2, Nanos::ZERO, Nanos::millis(800));
    plan.flaky_link(n(1), n(0), 0.2, Nanos::ZERO, Nanos::millis(800));
    let injector = FaultInjector::new(plan, 7);

    let run = TcpCluster::launch_chaotic(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
        injector,
    )
    .expect("launch");
    let mut client = run.client(n(0)).expect("client");
    client.set_timeout(Duration::from_millis(500));

    // Losing 20% of leader<->follower frames must not lose committed writes:
    // retry until each put lands, then read everything back.
    for i in 0..10u64 {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if client.put(i, vec![i as u8]).map(|r| r.ok).unwrap_or(false) {
                break;
            }
            assert!(attempts < 50, "put {i} never succeeded");
        }
    }
    client.set_timeout(Duration::from_secs(5));
    for i in 0..10u64 {
        let r = client.get(i).expect("get");
        assert_eq!(r.value, Some(vec![i as u8]), "key {i}");
    }
    run.shutdown();
}

/// Same flaky-link plan, but with command batching on — multi-command P2as
/// flow through the TCP writer's burst coalescing. Every committed write
/// must land exactly once: each key holds exactly the *last* value retried
/// to success, with no duplicated or reordered application visible.
#[test]
fn tcp_cluster_batched_writer_delivers_frames_exactly_once_under_faults() {
    let cluster = ClusterConfig::lan(3);
    let mut plan = FaultPlan::new();
    plan.flaky_link(n(0), n(1), 0.2, Nanos::ZERO, Nanos::millis(800));
    plan.flaky_link(n(1), n(0), 0.2, Nanos::ZERO, Nanos::millis(800));
    let injector = FaultInjector::new(plan, 7);

    let run = TcpCluster::launch_chaotic(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        injector,
    )
    .expect("launch");
    let mut client = run.client(n(0)).expect("client");
    client.set_timeout(Duration::from_millis(500));

    // Two generations per key: the second put must overwrite the first
    // exactly (a duplicated or reordered first-generation frame would
    // resurface as a stale read below).
    for gen in 0..2u8 {
        for i in 0..10u64 {
            let mut attempts = 0;
            loop {
                attempts += 1;
                if client.put(i, vec![gen, i as u8]).map(|r| r.ok).unwrap_or(false) {
                    break;
                }
                assert!(attempts < 50, "gen {gen} put {i} never succeeded");
            }
        }
    }
    client.set_timeout(Duration::from_secs(5));
    for i in 0..10u64 {
        let r = client.get(i).expect("get");
        assert_eq!(r.value, Some(vec![1, i as u8]), "key {i} must hold its last write");
    }
    run.shutdown();
}
