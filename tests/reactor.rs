//! Reactor-transport integration: pipelined clients under chaos.
//!
//! Two claims, live counterparts of the simulator's delivery guarantees:
//!
//! 1. **Fate parity carries over.** The reactor wraps the node's outbound
//!    half in the same `ChaosOut` as the threaded TCP runtime, so a
//!    `FaultPlan` + seed produces the same per-message fates — the flaky-link
//!    survival test below is the reactor twin of the TCP one in
//!    `chaos_transport.rs`.
//! 2. **Pipelining is exactly-once.** A `PipelinedClient` with N requests in
//!    flight over one connection, against a cluster whose peer links drop
//!    and reorder frames, claims every reply exactly once (correlated by
//!    request id) and converges to the same final state as a sequential
//!    `SyncClient` run of the same commands on a chaos-free cluster.

#![cfg(unix)]

use paxi::core::obs::DropCause;
use paxi::core::{ClusterConfig, Command, FaultPlan, Nanos, NodeId};
use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi::transport::{FaultInjector, InProcCluster, ReactorCluster};
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

fn n(i: u8) -> NodeId {
    NodeId::new(0, i)
}

/// Reactor twin of `tcp_cluster_survives_flaky_links_under_injection`:
/// same plan, same seed, same workload — the decision layer is shared, so
/// the reactor must ride out the identical fate sequence.
#[test]
fn reactor_cluster_survives_flaky_links_under_injection() {
    let cluster = ClusterConfig::lan(3);
    let mut plan = FaultPlan::new();
    plan.flaky_link(n(0), n(1), 0.2, Nanos::ZERO, Nanos::millis(800));
    plan.flaky_link(n(1), n(0), 0.2, Nanos::ZERO, Nanos::millis(800));
    let injector = FaultInjector::new(plan, 7);

    let run = ReactorCluster::launch_chaotic(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
        injector,
    )
    .expect("launch");
    let mut client = run.client(n(0)).expect("client");
    client.set_timeout(Duration::from_millis(500));

    // Losing 20% of leader<->follower frames must not lose committed writes:
    // retry until each put lands, then read everything back.
    for i in 0..10u64 {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if client.put(i, vec![i as u8]).map(|r| r.ok).unwrap_or(false) {
                break;
            }
            assert!(attempts < 50, "put {i} never succeeded");
        }
    }
    client.set_timeout(Duration::from_secs(5));
    for i in 0..10u64 {
        let r = client.get(i).expect("get");
        assert_eq!(r.value, Some(vec![i as u8]), "key {i}");
    }
    // Every frame the chaos shed is attributed; nothing vanished silently.
    assert_eq!(run.drops().get(DropCause::Unexplained), 0);
    let conns = run.conn_stats().clone();
    run.shutdown();
    assert_eq!(conns.opens(), conns.closes(), "no leaked reactor connections");
}

proptest! {
    // Each case launches two real clusters; keep the case count low.
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn pipelined_chaos_run_matches_sequential_reference(
        seed in 0u64..1_000,
        kvs in proptest::collection::btree_map(
            0u64..64,
            proptest::collection::vec(any::<u8>(), 1..8),
            1..16,
        ),
    ) {
        // Distinct keys (btree_map) so final state is order-independent and
        // a retried put is idempotent.
        let kvs: Vec<(u64, Vec<u8>)> = kvs.into_iter().collect();
        let cluster = ClusterConfig::lan(3);

        // Sequential reference: SyncClient on the chaos-free in-process
        // cluster, same commands in submission order.
        let reference = InProcCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        );
        let mut ref_client = reference.client(n(0));
        ref_client.set_timeout(Duration::from_secs(5));
        for (k, v) in &kvs {
            let r = ref_client.put(*k, v.clone()).expect("reference put");
            prop_assert!(r.ok);
        }
        let mut expect = Vec::new();
        for (k, _) in &kvs {
            let r = ref_client.get(*k).expect("reference get");
            expect.push((*k, r.value));
        }
        reference.shutdown();

        // Subject: every command in flight at once on one pipelined
        // connection, peer links flaky until they heal, fates fixed by seed.
        let mut plan = FaultPlan::new();
        plan.flaky_link(n(0), n(1), 0.15, Nanos::ZERO, Nanos::millis(300));
        plan.flaky_link(n(1), n(0), 0.15, Nanos::ZERO, Nanos::millis(300));
        plan.heal(Nanos::millis(300));
        let injector = FaultInjector::new(plan, seed);
        let run = ReactorCluster::launch_chaotic(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
            injector,
        )
        .expect("launch");
        let mut client = run.client(n(0)).expect("client");
        client.set_timeout(Duration::from_millis(400));

        // Submit the whole batch, then claim each reply; commands whose
        // reply never arrived (dropped P2as, timeouts) are resubmitted under
        // fresh request ids until they commit. Every claimed reply must
        // correlate to its own request, and no id is ever claimed twice.
        let mut pending: Vec<(u64, Vec<u8>)> = kvs.clone();
        let mut claimed = HashSet::new();
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            prop_assert!(rounds <= 50, "commands never all committed");
            let mut ids = Vec::new();
            for (k, v) in &pending {
                let id = client.submit(Command::put(*k, v.clone())).expect("submit");
                prop_assert!(claimed.insert(id), "request id reused");
                ids.push(id);
            }
            let mut next = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                match client.await_response(*id) {
                    Some(resp) => {
                        prop_assert_eq!(resp.id, *id, "reply claimed by the wrong await");
                        if !resp.ok {
                            next.push(pending[i].clone());
                        }
                    }
                    None => next.push(pending[i].clone()),
                }
            }
            pending = next;
        }

        // Converged state equals the sequential reference.
        client.set_timeout(Duration::from_secs(5));
        for (k, v) in &expect {
            let r = client.get(*k).expect("get");
            prop_assert_eq!(&r.value, v, "key {}", k);
        }
        prop_assert_eq!(run.drops().get(DropCause::Unexplained), 0);
        run.shutdown();
    }
}
