//! The sharded (multi-group) runtime end to end: amnesia recovery of a node
//! hosting several group leaders, the seeded nemesis over sharded clusters,
//! the `groups = 1` no-op guarantee, and the live `ShardRouter`.
//!
//! The sharding layer's core promises, in test form:
//! * one node crash is a crash of *every* group it hosts, and amnesia
//!   recovery rebuilds all of that node's group replicas from their own WAL
//!   namespaces;
//! * the nemesis schedule is generated independently of the group count, so
//!   a sharded run replays the exact fault plan (and digest) of its
//!   unsharded twin;
//! * a single-group sharded deployment is the unsharded protocol in a
//!   cost-free envelope — same events, same fingerprint;
//! * the client-side router converges on every group's leader over a real
//!   (wall-clock, channel-backed) transport via redirects.

use paxi::bench::{
    check_group_consensus, check_shard_leakage, check_sharded, run_nemesis, run_sharded_nemesis,
    NemesisConfig, Proto, ShardProto,
};
use paxi::core::{ClusterConfig, Command, CrashMode, GroupId, Nanos, NodeId};
use paxi::protocols::paxos::{MultiPaxos, PaxosConfig};
use paxi::shard::{
    sharded_cluster, spread_leader, ClientPool, RangePartitioner, RouterConfig, ShardDisks,
    ShardRouter, ShardSpec,
};
use paxi::sim::client::uniform_workload;
use paxi::sim::{ClientSetup, SimConfig, SimReport, Simulator};
use paxi::storage::FsyncPolicy;
use paxi::transport::channel::InProcCluster;

fn lan_sim() -> SimConfig {
    SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::millis(3_900),
        ..SimConfig::default()
    }
}

/// Builds the standard sharded-Paxos factory: range partitioning, spread
/// leader placement, one WAL namespace per `(node, group)` when `disks` is
/// given.
fn paxos_factory(
    cluster: &ClusterConfig,
    key_space: u64,
    groups: u32,
    disks: Option<ShardDisks>,
) -> impl Fn(NodeId) -> paxi::shard::ShardedReplica<MultiPaxos> {
    let cl = cluster.clone();
    sharded_cluster(ShardSpec::range(key_space, groups), move |id: NodeId, g: GroupId| {
        let cfg =
            PaxosConfig { initial_leader: spread_leader(&cl, g), ..PaxosConfig::default() };
        let mut r = MultiPaxos::new(id, cl.clone(), cfg);
        if let Some(d) = &disks {
            r.attach_storage(Box::new(d.open(id, g)));
        }
        r
    })
}

#[test]
fn amnesia_crash_of_a_multi_leader_node_rebuilds_all_its_group_wals() {
    // 8 groups on 5 nodes: spread placement makes node (0,0) the leader of
    // groups 0 AND 5, and a follower of the other six. One amnesia crash
    // must take all eight of its group replicas down together and rebuild
    // each from its own WAL namespace.
    let cluster = ClusterConfig::lan(5);
    let (groups, key_space) = (8u32, 64u64);
    let victim = NodeId::new(0, 0);
    assert_eq!(spread_leader(&cluster, GroupId(0)), victim);
    assert_eq!(spread_leader(&cluster, GroupId(5)), victim);

    let disks = ShardDisks::new(FsyncPolicy::Always, groups);
    let factory = paxos_factory(&cluster, key_space, groups, Some(disks.clone()));
    let sim = SimConfig {
        record_ops: true,
        client_retry: Some(Nanos::millis(500)),
        warmup: Nanos::millis(200),
        measure: Nanos::millis(3_800),
        ..SimConfig::default()
    };
    let recover_at = Nanos::millis(2_500);
    let mut s = Simulator::new(
        sim,
        cluster.clone(),
        factory,
        uniform_workload(key_space),
        ClientSetup::closed_per_zone(&cluster, 2),
    );
    s.set_storage(disks.clone());
    s.faults_mut().crash_amnesia(victim, Nanos::millis(1_500), Nanos::millis(1_000));
    let report = s.run();

    assert!(report.completed > 300, "completed {}", report.completed);
    // Every group namespace on the victim persisted state before the crash
    // (leader accepts for groups 0 and 5, follower accepts for the rest),
    // and the synced bytes survived the amnesia wipe.
    for g in 0..groups {
        assert!(
            disks.synced_len(victim, GroupId(g)) > 0,
            "group {g} WAL namespace on the crashed node is empty"
        );
    }
    // The cluster made progress after the victim's recovery...
    let tail = report.ops.iter().filter(|o| o.ok && o.ret >= recover_at).count();
    assert!(tail > 0, "no progress after the victim recovered");
    // ...and the rebuilt node agrees with everyone else: per-shard histories
    // are clean, no group leaked keys, no group diverged.
    let part = RangePartitioner::even(key_space, groups);
    for (g, anomalies) in check_sharded(&report.ops, &part) {
        assert!(
            anomalies.is_empty(),
            "shard {g}: {} anomalous reads, first {:?}",
            anomalies.len(),
            anomalies.first()
        );
    }
    assert!(check_shard_leakage(s.replicas(), &part).is_empty());
    assert!(check_group_consensus(s.replicas()).is_none());
}

#[test]
fn sharded_nemesis_passes_across_seeds_and_crash_modes() {
    // The seeded chaos suite over a 4-group Paxos deployment, under both
    // crash semantics. Amnesia runs give every group its own WAL namespace;
    // a crashed node rebuilds all four replicas from disk.
    for seed in [1, 2, 3] {
        for mode in [CrashMode::Freeze, CrashMode::Amnesia] {
            let cfg = NemesisConfig { seed, crash_mode: mode, ..Default::default() };
            let out = run_sharded_nemesis(
                ShardProto::Paxos,
                4,
                lan_sim(),
                ClusterConfig::lan(5),
                &cfg,
            );
            assert!(
                out.passed(),
                "{} seed {seed} digest {:#x}: {} anomalies (first {:?}), tail {}\nschedule:\n{}",
                out.proto,
                out.schedule.digest(),
                out.anomalies.len(),
                out.anomalies.first(),
                out.tail_completed,
                out.schedule.steps.join("\n"),
            );
        }
    }
}

#[test]
fn sharded_raft_nemesis_recovers_from_amnesia() {
    let cfg = NemesisConfig { seed: 5, crash_mode: CrashMode::Amnesia, ..Default::default() };
    let out =
        run_sharded_nemesis(ShardProto::Raft, 2, lan_sim(), ClusterConfig::lan(5), &cfg);
    assert!(
        out.passed(),
        "{}: {} anomalies, tail {}\nschedule:\n{}",
        out.proto,
        out.anomalies.len(),
        out.tail_completed,
        out.schedule.steps.join("\n"),
    );
}

fn fingerprint(r: &SimReport) -> (u64, u64, u64, String) {
    let digest = r
        .ops
        .iter()
        .take(50)
        .map(|o| format!("{}:{}:{}:{}", o.client, o.key, o.invoke.0, o.ret.0))
        .collect::<Vec<_>>()
        .join(",");
    (r.completed, r.events_processed, r.latency.mean.0, digest)
}

#[test]
fn single_group_sharding_leaves_the_determinism_fingerprint_unchanged() {
    // groups = 1 must be a numeric no-op: group 0's message tags are
    // stripped before cost accounting and its timer tags are the identity,
    // so the sharded run replays the unsharded event sequence exactly.
    let cluster = ClusterConfig::lan(5);
    let sim = SimConfig {
        seed: 7,
        record_ops: true,
        warmup: Nanos::millis(200),
        measure: Nanos::secs(1),
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);

    let cl = cluster.clone();
    let mut plain = Simulator::new(
        sim.clone(),
        cluster.clone(),
        move |id: NodeId| MultiPaxos::new(id, cl.clone(), PaxosConfig::default()),
        uniform_workload(50),
        clients.clone(),
    );
    let unsharded = plain.run();

    let mut wrapped = Simulator::new(
        sim,
        cluster.clone(),
        paxos_factory(&cluster, 50, 1, None),
        uniform_workload(50),
        clients,
    );
    let sharded = wrapped.run();

    assert_eq!(
        fingerprint(&unsharded),
        fingerprint(&sharded),
        "a single-group sharded run must be event-identical to the unsharded protocol"
    );
}

#[test]
fn sharded_nemesis_replays_the_unsharded_schedule_and_digest() {
    // Schedule generation sees only (seed, cluster, horizon, episodes,
    // mode) — never the group count — so the fault-plan fingerprint is
    // invariant under sharding, and a groups=1 freeze run reproduces the
    // unsharded outcome numbers exactly.
    let lan = ClusterConfig::lan(5);
    let cfg = NemesisConfig { seed: 11, ..Default::default() };
    let plain = run_nemesis(&Proto::paxos(), lan_sim(), lan.clone(), &cfg);
    let g1 = run_sharded_nemesis(ShardProto::Paxos, 1, lan_sim(), lan.clone(), &cfg);
    let g4 = run_sharded_nemesis(ShardProto::Paxos, 4, lan_sim(), lan.clone(), &cfg);

    assert_eq!(plain.schedule.steps, g1.schedule.steps);
    assert_eq!(plain.schedule.digest(), g1.schedule.digest());
    assert_eq!(
        plain.schedule.digest(),
        g4.schedule.digest(),
        "the nemesis digest must not depend on the group count"
    );
    assert_eq!(plain.completed, g1.completed, "groups=1 must replay the unsharded run");
    assert_eq!(plain.tail_completed, g1.tail_completed);
    assert!(plain.passed() && g1.passed() && g4.passed());

    // The amnesia twin keeps the same invariance (its digest differs from
    // freeze — crash semantics are part of the fingerprint — but not
    // between sharded and unsharded).
    let amnesia = NemesisConfig { seed: 11, crash_mode: CrashMode::Amnesia, ..Default::default() };
    let plain_a = run_nemesis(&Proto::paxos(), lan_sim(), lan.clone(), &amnesia);
    let g4_a = run_sharded_nemesis(ShardProto::Paxos, 4, lan_sim(), lan, &amnesia);
    assert_eq!(plain_a.schedule.digest(), g4_a.schedule.digest());
    assert_ne!(plain.schedule.digest(), plain_a.schedule.digest());
    assert!(plain_a.passed() && g4_a.passed());
}

#[test]
fn shard_router_converges_on_every_group_leader_over_the_live_transport() {
    // A 3-group deployment over the wall-clock channel transport in
    // redirect mode: wrong-leader requests come back with the true leader,
    // and the router's per-group cache converges after one redirect each.
    let cluster = ClusterConfig::lan(3);
    let (groups, key_space) = (3u32, 90u64);
    let spec = ShardSpec::range(key_space, groups).with_redirect();
    let part = spec.partitioner.clone();
    let cl = cluster.clone();
    let factory = sharded_cluster(spec, move |id: NodeId, g: GroupId| {
        let cfg =
            PaxosConfig { initial_leader: spread_leader(&cl, g), ..PaxosConfig::default() };
        MultiPaxos::new(id, cl.clone(), cfg)
    });
    let run = InProcCluster::launch(cluster.clone(), factory);
    let nodes = cluster.all_nodes();
    let pool = ClientPool::new(nodes.iter().map(|&n| (n, run.client(n))).collect());

    // Rotate the probe order so every group's cold-cache prior is WRONG:
    // the first contact per group must be answered with a redirect.
    let mut rotated = nodes.clone();
    rotated.rotate_left(1);
    let mut router = ShardRouter::new(part, rotated, pool, RouterConfig::default());

    // One write per group (keys 0, 30, 60 land in groups 0, 1, 2), then a
    // second wave served from the warm cache.
    for key in [0u64, 30, 60] {
        let resp = router.execute(Command::put(key, vec![key as u8])).expect("routed put");
        assert!(resp.ok);
    }
    assert_eq!(router.stats.redirects, groups as u64, "one redirect per cold group");
    for key in [0u64, 30, 60] {
        let resp = router.execute(Command::get(key)).expect("routed get");
        assert!(resp.ok);
        assert_eq!(resp.value, Some(vec![key as u8]));
    }
    assert_eq!(router.stats.redirects, groups as u64, "warm cache: no further redirects");
    for g in 0..groups {
        assert_eq!(
            router.cached_leader(g),
            Some(spread_leader(&cluster, GroupId(g))),
            "group {g} cache must hold the placed leader"
        );
    }
    assert_eq!(router.stats.failures, 0);
    run.shutdown();
}
