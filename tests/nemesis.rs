//! Seeded nemesis runs: randomized fault schedules, zero anomalies.
//!
//! Each test replays several seeds of the nemesis against one protocol. A
//! schedule mixes minority crashes, single-node partitions, and flaky/slow
//! links, heals at 75% of the run, and the full operation history goes
//! through the offline linearizability checker — strongly consistent
//! protocols must produce zero anomalous reads under every schedule, and
//! must make progress again in the fault-free tail. Across the tests below
//! at least 20 distinct schedules are exercised; any failure names its seed
//! so the exact run can be replayed (see EXPERIMENTS.md, "Chaos & nemesis
//! runs").

use paxi::bench::{generate_schedule, run_nemesis, NemesisConfig, Proto};
use paxi::core::{ClusterConfig, Nanos};
use paxi::protocols::raft::RaftConfig;
use paxi::protocols::wpaxos::WPaxosConfig;
use paxi::sim::{SimConfig, Topology};

const SEEDS: [u64; 7] = [1, 2, 3, 5, 8, 13, 21];

fn lan_sim() -> SimConfig {
    SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::millis(3_900),
        ..SimConfig::default()
    }
}

fn zoned_sim() -> SimConfig {
    SimConfig { topology: Topology::lan_zones(3), ..lan_sim() }
}

fn assert_clean(proto: &Proto, sim: SimConfig, cluster: ClusterConfig, cfg: NemesisConfig) {
    let out = run_nemesis(proto, sim, cluster, &cfg);
    assert!(
        out.anomalies.is_empty(),
        "{} seed {} digest {:#x}: {} anomalies, first {:?}\nschedule:\n{}",
        out.proto,
        out.seed,
        out.schedule.digest(),
        out.anomalies.len(),
        out.anomalies.first(),
        out.schedule.steps.join("\n"),
    );
    assert!(
        out.tail_completed > 0,
        "{} seed {}: no progress after heal\nschedule:\n{}",
        out.proto,
        out.seed,
        out.schedule.steps.join("\n"),
    );
}

#[test]
fn nemesis_paxos_seven_seeds() {
    for seed in SEEDS {
        assert_clean(
            &Proto::paxos(),
            lan_sim(),
            ClusterConfig::lan(5),
            NemesisConfig { seed, ..Default::default() },
        );
    }
}

#[test]
fn nemesis_epaxos_seven_seeds() {
    // A wider key space keeps conflicts rare: EPaxos implements no explicit
    // instance recovery (out of the paper's scope), so a command wedged by a
    // crash can block later conflicting commands on the same key. Safety is
    // unaffected — the checker still sees every completed operation.
    for seed in SEEDS {
        assert_clean(
            &Proto::epaxos(),
            lan_sim(),
            ClusterConfig::lan(5),
            NemesisConfig { seed, keys: 64, ..Default::default() },
        );
    }
}

#[test]
fn nemesis_wpaxos_seven_seeds() {
    for seed in SEEDS {
        assert_clean(
            &Proto::WPaxos(WPaxosConfig::default()),
            zoned_sim(),
            ClusterConfig::wan(3, 3, 1, 0),
            NemesisConfig { seed, ..Default::default() },
        );
    }
}

#[test]
fn nemesis_raft_three_seeds() {
    for seed in [4, 9, 16] {
        assert_clean(
            &Proto::Raft { cfg: RaftConfig::default(), cpu_penalty: 1.0 },
            lan_sim(),
            ClusterConfig::lan(5),
            NemesisConfig { seed, ..Default::default() },
        );
    }
}

#[test]
fn same_seed_reproduces_the_same_run() {
    let cfg = NemesisConfig { seed: 42, ..Default::default() };
    let a = run_nemesis(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), &cfg);
    let b = run_nemesis(&Proto::paxos(), lan_sim(), ClusterConfig::lan(5), &cfg);
    assert_eq!(a.schedule.steps, b.schedule.steps);
    assert_eq!(a.schedule.digest(), b.schedule.digest());
    assert_eq!(a.completed, b.completed, "same seed must replay identically");
    assert_eq!(a.tail_completed, b.tail_completed);
}

#[test]
fn different_seeds_produce_different_schedules() {
    let cluster = ClusterConfig::lan(5);
    let horizon = Nanos::secs(4);
    let digests: Vec<u64> =
        (0..10).map(|s| generate_schedule(s, &cluster, horizon, 5).digest()).collect();
    let mut unique = digests.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), digests.len(), "schedule digests must differ across seeds");
}
