//! Cross-protocol linearizability and consensus checking.
//!
//! Every protocol runs the same mixed read/write workload on a small, highly
//! contended key space; the TAO-style offline checker then scans the full
//! operation log for anomalous reads, and (where replicas expose their state
//! machine) the consensus checker verifies that all per-key histories share
//! a common prefix. This is the paper's "consistency" benchmark tier.

use paxi::bench::{check_consensus, check_linearizability, run, Proto};
use paxi::core::Replica;
use paxi::core::{ClusterConfig, Nanos};
use paxi::protocols::raft::RaftConfig;
use paxi::protocols::vpaxos::VPaxosConfig;
use paxi::protocols::wankeeper::WanKeeperConfig;
use paxi::protocols::wpaxos::WPaxosConfig;
use paxi::sim::{ClientSetup, SimConfig, Topology};
use paxi_core::dist::Rng64;
use paxi_core::id::ClientId;
use paxi_core::Command;

fn contended_workload(
    keys: u64,
) -> impl FnMut(ClientId, u8, u64, Nanos, &mut Rng64) -> Command {
    move |client: ClientId, _zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        let key = rng.below(keys);
        if rng.chance(0.5) {
            Command::get(key)
        } else {
            Command::put(key, paxi::sim::client::unique_value(client, seq))
        }
    }
}

fn check(proto: Proto, cluster: ClusterConfig, topology: Topology) {
    let sim = SimConfig {
        record_ops: true,
        topology,
        warmup: Nanos::millis(300),
        measure: Nanos::secs(2),
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let report = run(&proto, sim, cluster, contended_workload(5), clients);
    assert!(report.completed > 300, "{}: completed {}", proto.name(), report.completed);
    let anomalies = check_linearizability(&report.ops);
    assert!(
        anomalies.is_empty(),
        "{}: {} anomalous reads, first: {:?}",
        proto.name(),
        anomalies.len(),
        anomalies.first()
    );
}

#[test]
fn paxos_is_linearizable() {
    check(Proto::paxos(), ClusterConfig::lan(5), Topology::lan());
}

#[test]
fn fpaxos_is_linearizable() {
    check(Proto::fpaxos(2), ClusterConfig::lan(5), Topology::lan());
}

#[test]
fn epaxos_is_linearizable_under_contention() {
    check(Proto::epaxos(), ClusterConfig::lan(5), Topology::lan());
}

#[test]
fn raft_is_linearizable() {
    check(
        Proto::Raft { cfg: RaftConfig::default(), cpu_penalty: 1.0 },
        ClusterConfig::lan(5),
        Topology::lan(),
    );
}

#[test]
fn wpaxos_is_linearizable_across_zones() {
    check(
        Proto::WPaxos(WPaxosConfig::default()),
        ClusterConfig::wan(3, 3, 1, 0),
        Topology::lan_zones(3),
    );
}

#[test]
fn wankeeper_is_linearizable_across_zones() {
    check(
        Proto::WanKeeper(WanKeeperConfig::default()),
        ClusterConfig::wan(3, 3, 1, 0),
        Topology::lan_zones(3),
    );
}

#[test]
fn vpaxos_is_linearizable_across_zones() {
    check(
        Proto::VPaxos(VPaxosConfig::default()),
        ClusterConfig::wan(3, 3, 1, 0),
        Topology::lan_zones(3),
    );
}

#[test]
fn wpaxos_in_wan_is_linearizable_during_migration() {
    // Object stealing across real WAN latencies must not lose or reorder
    // committed writes.
    check(
        Proto::WPaxos(WPaxosConfig::default()),
        ClusterConfig::wan(3, 3, 1, 0),
        Topology::aws3(),
    );
}

// --- sharded deployments: per-shard checking and cross-shard isolation ---
//
// A sharded run is `N` disjoint consensus instances over one set of nodes.
// Linearizability is checked per shard (a global check could mask cross-shard
// bugs), and two isolation invariants are audited on the surviving state:
// no group's store holds a key the partitioner assigns elsewhere, and every
// group's replicas share a common per-key history prefix.

#[test]
fn sharded_paxos_is_linearizable_per_shard() {
    use paxi::bench::{check_sharded, run_sharded_checked, ShardProto};
    use paxi::shard::RangePartitioner;
    let sim = SimConfig {
        record_ops: true,
        warmup: Nanos::millis(300),
        measure: Nanos::secs(2),
        ..SimConfig::default()
    };
    let (groups, key_space) = (4, 64);
    let run = run_sharded_checked(
        ShardProto::Paxos,
        groups,
        sim,
        ClusterConfig::lan(5),
        key_space,
        3,
    );
    assert!(run.report.completed > 300, "completed {}", run.report.completed);
    assert!(run.leakage.is_empty(), "cross-shard key leakage: {:?}", run.leakage);
    assert!(run.divergence.is_none(), "within-group divergence: {:?}", run.divergence);
    let part = RangePartitioner::even(key_space, groups);
    let shards = check_sharded(&run.report.ops, &part);
    assert!(shards.len() >= 2, "expected traffic on several shards, got {}", shards.len());
    for (g, anomalies) in shards {
        assert!(
            anomalies.is_empty(),
            "shard {g}: {} anomalous reads, first: {:?}",
            anomalies.len(),
            anomalies.first()
        );
    }
}

#[test]
fn sharded_raft_keeps_groups_isolated() {
    use paxi::bench::{run_sharded_checked, ShardProto};
    let sim = SimConfig {
        warmup: Nanos::millis(300),
        measure: Nanos::secs(2),
        ..SimConfig::default()
    };
    let run =
        run_sharded_checked(ShardProto::Raft, 2, sim, ClusterConfig::lan(5), 64, 3);
    assert!(run.report.completed > 300, "completed {}", run.report.completed);
    assert!(run.leakage.is_empty(), "cross-shard key leakage: {:?}", run.leakage);
    assert!(run.divergence.is_none(), "within-group divergence: {:?}", run.divergence);
}

#[test]
fn per_shard_checker_isolates_anomalies_to_the_offending_shard() {
    use paxi::bench::check_sharded;
    use paxi::core::GroupId;
    use paxi::shard::RangePartitioner;
    use paxi::sim::OpRecord;
    // Two groups over keys [0,4) and [4,8).
    let part = RangePartitioner::even(8, 2);
    let rec = |client: u32, key: u64, write: Option<&[u8]>, read: Option<&[u8]>, t: u64| OpRecord {
        client: ClientId(client),
        key,
        write: write.map(|v| v.to_vec()),
        read: read.map(|v| Some(v.to_vec())),
        invoke: Nanos(t),
        ret: Nanos(t + 5),
        ok: true,
    };
    let ops = vec![
        // Shard 0 (key 1): clean write-then-read.
        rec(0, 1, Some(b"a"), None, 0),
        rec(0, 1, None, Some(b"a"), 10),
        // Shard 1 (key 5): the read observes a value nobody ever wrote.
        rec(1, 5, Some(b"b"), None, 0),
        rec(1, 5, None, Some(b"phantom"), 10),
    ];
    let shards = check_sharded(&ops, &part);
    assert_eq!(shards.len(), 2);
    for (g, anomalies) in shards {
        if g == GroupId(0) {
            assert!(anomalies.is_empty(), "clean shard flagged: {anomalies:?}");
        } else {
            assert!(!anomalies.is_empty(), "phantom read in shard {g} went undetected");
        }
    }
}

#[test]
fn consensus_checker_accepts_paxos_replicas() {
    use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
    use paxi::sim::Simulator;
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 4);
    let mut sim = Simulator::new(
        SimConfig::default(),
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
        contended_workload(10),
        clients,
    );
    let _ = sim.run();
    let stores: Vec<_> =
        sim.replicas().iter().map(|r| r.store().expect("paxos exposes its store")).collect();
    check_consensus(&stores).expect("replica histories must share a common prefix");
}

#[test]
fn consensus_checker_accepts_epaxos_replicas() {
    use paxi::protocols::epaxos::epaxos_cluster;
    use paxi::sim::Simulator;
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 4);
    let mut sim = Simulator::new(
        SimConfig::default(),
        cluster.clone(),
        epaxos_cluster(cluster),
        contended_workload(3),
        clients,
    );
    let _ = sim.run();
    let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
    check_consensus(&stores).expect("EPaxos SCC execution must agree across replicas");
}
