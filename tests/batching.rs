//! Batching equivalence: batch size is a performance knob, never a
//! correctness knob.
//!
//! Two families of guarantees:
//!
//! 1. **Batch-size invariance of the committed history.** A lockstep
//!    message bus drives real [`MultiPaxos`] replicas through a seeded
//!    request schedule; for any seed, the executed per-key history, the
//!    reply sequence, and the replicated stores must be identical across
//!    `max_batch ∈ {1, 4, 16}` — batch boundaries change how commands are
//!    packed into slots, not what the state machine observes.
//!
//! 2. **`max_batch = 1` is the pre-batching protocol, bit for bit.** The
//!    unbatched fast path takes the exact code path that existed before
//!    batching, so a batched(1) run must reproduce the stock determinism
//!    fingerprints and nemesis digests unchanged.

use paxi::bench::{run, run_nemesis, BenchmarkConfig, GeneralWorkload, NemesisConfig, Proto};
use paxi::core::{
    ClientId, ClientRequest, ClientResponse, ClusterConfig, Command, Context, Nanos, NodeId,
    Replica, RequestId, Rng64, StoreDump,
};
use paxi::protocols::paxos::{MultiPaxos, PaxosConfig, PaxosMsg};
use paxi::protocols::raft::RaftConfig;
use paxi::sim::{ClientSetup, SimConfig, Topology};
use proptest::prelude::*;
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Lockstep bus: a minimal synchronous runtime for a replica group.
//
// Messages are delivered in FIFO order with zero latency and zero loss;
// timers are fired explicitly by the test between delivery rounds. The clock
// never advances (every `now()` is zero), so election timeouts cannot expire
// and the initial leader stays the leader — exactly the regime in which the
// committed history must be a pure function of the request schedule.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Bus {
    /// In-flight protocol messages `(from, to, msg)`.
    msgs: VecDeque<(NodeId, NodeId, PaxosMsg)>,
    /// Forwarded client requests `(to, req)`.
    reqs: VecDeque<(NodeId, ClientRequest)>,
    /// Armed timers `(node, kind, token)`; fired once per settle round.
    timers: Vec<(NodeId, u64, u64)>,
    /// Client replies in emission order.
    replies: Vec<ClientResponse>,
    next_token: u64,
}

struct BusCtx<'a> {
    id: NodeId,
    nodes: &'a [NodeId],
    bus: &'a mut Bus,
}

impl Context<PaxosMsg> for BusCtx<'_> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn now(&self) -> Nanos {
        Nanos::ZERO
    }
    fn send(&mut self, to: NodeId, msg: PaxosMsg) {
        self.bus.msgs.push_back((self.id, to, msg));
    }
    fn broadcast(&mut self, msg: PaxosMsg) {
        for &n in self.nodes {
            if n != self.id {
                self.bus.msgs.push_back((self.id, n, msg.clone()));
            }
        }
    }
    fn multicast(&mut self, to: &[NodeId], msg: PaxosMsg) {
        for &n in to {
            self.bus.msgs.push_back((self.id, n, msg.clone()));
        }
    }
    fn set_timer(&mut self, _after: Nanos, kind: u64) -> u64 {
        self.bus.next_token += 1;
        let token = self.bus.next_token;
        self.bus.timers.push((self.id, kind, token));
        token
    }
    fn reply(&mut self, resp: ClientResponse) {
        self.bus.replies.push(resp);
    }
    fn forward(&mut self, to: NodeId, req: ClientRequest) {
        self.bus.reqs.push_back((to, req));
    }
    fn rand_u64(&mut self) -> u64 {
        0x9E37_79B9_7F4A_7C15
    }
}

struct Group {
    nodes: Vec<NodeId>,
    replicas: Vec<MultiPaxos>,
    bus: Bus,
}

impl Group {
    fn new(n: usize, max_batch: usize) -> Self {
        let cluster = ClusterConfig::lan(n);
        // Failover off: no election timers, so the only timers in play are
        // the leader's heartbeat and the batch hold-down.
        let cfg = PaxosConfig { enable_failover: false, ..PaxosConfig::batched(max_batch) };
        let nodes = cluster.all_nodes();
        let replicas = nodes
            .iter()
            .map(|&id| MultiPaxos::new(id, cluster.clone(), cfg.clone()))
            .collect::<Vec<_>>();
        let mut g = Group { nodes, replicas, bus: Bus::default() };
        for i in 0..g.replicas.len() {
            let id = g.nodes[i];
            let mut ctx = BusCtx { id, nodes: &g.nodes, bus: &mut g.bus };
            g.replicas[i].on_start(&mut ctx);
        }
        g.settle(3);
        g
    }

    /// Delivers every in-flight message and forwarded request to quiescence.
    fn drain(&mut self) {
        loop {
            if let Some((from, to, msg)) = self.bus.msgs.pop_front() {
                let i = self.index(to);
                let mut ctx = BusCtx { id: to, nodes: &self.nodes, bus: &mut self.bus };
                self.replicas[i].on_message(from, msg, &mut ctx);
                continue;
            }
            if let Some((to, req)) = self.bus.reqs.pop_front() {
                let i = self.index(to);
                let mut ctx = BusCtx { id: to, nodes: &self.nodes, bus: &mut self.bus };
                self.replicas[i].on_request(req, &mut ctx);
                continue;
            }
            break;
        }
    }

    /// `rounds` iterations of: drain, fire every armed timer once, drain.
    /// One round flushes a pending partial batch (batch timer) and commits
    /// it (phase-2 exchange); a second delivers the heartbeat's commit flush
    /// to the followers. Firing each timer at most once per round keeps the
    /// self-re-arming heartbeat from looping forever.
    fn settle(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.drain();
            for (node, kind, token) in std::mem::take(&mut self.bus.timers) {
                let i = self.index(node);
                let mut ctx = BusCtx { id: node, nodes: &self.nodes, bus: &mut self.bus };
                self.replicas[i].on_timer(kind, token, &mut ctx);
            }
            self.drain();
        }
    }

    fn submit(&mut self, req: ClientRequest) {
        // Delivered to the initial leader, as a smart client would.
        self.bus.reqs.push_back((self.nodes[0], req));
        self.drain();
    }

    fn index(&self, id: NodeId) -> usize {
        self.nodes.iter().position(|&n| n == id).expect("message to unknown node")
    }

    fn dumps(&self) -> Vec<StoreDump> {
        self.replicas.iter().map(|r| r.store().expect("paxos exposes a store").dump()).collect()
    }
}

/// A seeded schedule of commands, split into bursts: within a burst requests
/// arrive back-to-back (so batches actually form), and between bursts the
/// group settles (so hold-down timers fire on partial batches).
fn schedule(seed: u64, total: usize) -> Vec<Vec<ClientRequest>> {
    let mut rng = Rng64::seed(seed);
    let client = ClientId(7);
    let mut bursts = Vec::new();
    let mut seq = 0u64;
    while seq < total as u64 {
        let burst_len = (1 + rng.below(6)).min(total as u64 - seq);
        let mut burst = Vec::new();
        for _ in 0..burst_len {
            let key = rng.below(8);
            let cmd = if rng.below(4) == 0 {
                Command::get(key)
            } else {
                Command::put(key, vec![seq as u8, (seq >> 8) as u8, 0x5A])
            };
            burst.push(ClientRequest { id: RequestId::new(client, seq), cmd });
            seq += 1;
        }
        bursts.push(burst);
    }
    bursts
}

/// Runs the schedule against a fresh 3-node group and returns the replies
/// plus every replica's final store dump.
fn run_lockstep(seed: u64, max_batch: usize) -> (Vec<ClientResponse>, Vec<StoreDump>) {
    let total = 96;
    let mut g = Group::new(3, max_batch);
    for burst in schedule(seed, total) {
        for req in burst {
            g.submit(req);
        }
        g.settle(2);
    }
    g.settle(3);
    let replies = std::mem::take(&mut g.bus.replies);
    assert_eq!(replies.len(), total, "every command gets exactly one reply");
    assert!(replies.iter().all(|r| r.ok), "no command fails on the happy path");
    let dumps = g.dumps();
    for (i, d) in dumps.iter().enumerate() {
        assert_eq!(d, &dumps[0], "replica {i} diverged from the leader");
    }
    (replies, dumps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seed, the reply sequence and the replicated stores are
    /// identical whether the leader packs 1, 4, or 16 commands per slot.
    #[test]
    fn committed_history_is_invariant_under_batch_size(seed in any::<u64>()) {
        let baseline = run_lockstep(seed, 1);
        for batch in [4usize, 16] {
            let batched = run_lockstep(seed, batch);
            prop_assert_eq!(
                &batched.0, &baseline.0,
                "replies diverged at max_batch={}", batch
            );
            prop_assert_eq!(
                &batched.1, &baseline.1,
                "stores diverged at max_batch={}", batch
            );
        }
    }
}

// ---------------------------------------------------------------------------
// max_batch = 1 reproduces the stock protocol exactly.
// ---------------------------------------------------------------------------

/// The determinism-suite fingerprint (see `tests/determinism.rs`).
fn fingerprint(proto: &Proto, seed: u64) -> (u64, u64, u64, String) {
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let sim = SimConfig {
        seed,
        topology: Topology::lan_zones(3),
        warmup: Nanos::millis(200),
        measure: Nanos::secs(1),
        record_ops: true,
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let report =
        run(proto, sim, cluster, GeneralWorkload::new(BenchmarkConfig::uniform(50, 0.5), 3), clients);
    let op_digest = report
        .ops
        .iter()
        .take(50)
        .map(|o| format!("{}:{}:{}", o.client, o.key, o.invoke.0))
        .collect::<Vec<_>>()
        .join(",");
    (report.completed, report.events_processed, report.latency.mean.0, op_digest)
}

#[test]
fn batch_of_one_matches_the_unbatched_determinism_fingerprint() {
    for seed in [1u64, 1234] {
        let stock = fingerprint(&Proto::paxos(), seed);
        let batched = fingerprint(&Proto::Paxos(PaxosConfig::batched(1)), seed);
        assert_eq!(batched, stock, "paxos batched(1) diverged from stock at seed {seed}");

        let stock = fingerprint(
            &Proto::Raft { cfg: RaftConfig::default(), cpu_penalty: 1.0 },
            seed,
        );
        let batched = fingerprint(
            &Proto::Raft { cfg: RaftConfig::batched(1), cpu_penalty: 1.0 },
            seed,
        );
        assert_eq!(batched, stock, "raft batched(1) diverged from stock at seed {seed}");
    }
}

#[test]
fn batch_of_one_leaves_nemesis_outcomes_unchanged() {
    let sim = || SimConfig { warmup: Nanos::millis(100), measure: Nanos::millis(3_900), ..SimConfig::default() };
    let cfg = NemesisConfig { seed: 13, ..Default::default() };
    let stock = run_nemesis(&Proto::paxos(), sim(), ClusterConfig::lan(5), &cfg);
    let batched =
        run_nemesis(&Proto::Paxos(PaxosConfig::batched(1)), sim(), ClusterConfig::lan(5), &cfg);
    assert_eq!(batched.schedule.digest(), stock.schedule.digest(), "schedule digests diverged");
    assert_eq!(batched.completed, stock.completed, "completed counts diverged");
    assert_eq!(batched.tail_completed, stock.tail_completed, "tail progress diverged");
    assert_eq!(batched.anomalies.len(), stock.anomalies.len());
    assert!(stock.passed() && batched.passed());
}
