//! Shard migration under chaos: the mid-migration nemesis suites.
//!
//! Each suite runs a live keyspace hand-off — the upper half of group 0's
//! slice migrates to group 1 — and fells a chosen victim *inside* the
//! migration window: the source group's leader (the node driving the
//! hand-off), the destination group's leader, or a follower of both, with
//! the crash onset aligned to each protocol phase (start, stream, commit)
//! and in both freeze (memory survives) and amnesia (memory wiped, WAL
//! replayed) crash modes. Every run must come out linearizable, make
//! progress after healing, account for every message loss
//! (`unexplained == 0`), finish the cut-over (a majority of nodes report
//! the target routing epoch), and leave a clean ownership audit: no dual
//! ownership, no orphaned acknowledged write, no cross-shard leakage
//! outside the migrated range.
//!
//! The suites ride on the same determinism contract as the rest of the
//! harness: a failing `(proto, victim, stage, mode, seed)` tuple replays
//! bit-for-bit, and the fingerprint tests pin the zero-cost property — a
//! single-group deployment with the migration plumbing wired (group
//! identity set, an elided kick-off in the workload) stays bit-identical
//! to the plain unsharded protocol.

use paxi::bench::{
    run_migration_nemesis, MigrationConfig, MigrationOutcome, MigrationStage, MigrationVictim,
    ShardProto,
};
use paxi::core::migration::{KeyRange, MigrationSpec};
use paxi::core::{ClusterConfig, CrashMode, GroupId, Nanos, NodeId};
use paxi::protocols::paxos::{MultiPaxos, PaxosConfig};
use paxi::shard::{sharded_cluster, spread_leader, ShardSpec, ShardedReplica};
use paxi::sim::client::uniform_workload;
use paxi::sim::{ClientSetup, MigrationWorkload, SimConfig, SimReport, Simulator};
use paxi_core::id::ClientId;

const VICTIMS: [MigrationVictim; 3] = [
    MigrationVictim::SourceLeader,
    MigrationVictim::DestLeader,
    MigrationVictim::Follower,
];

const STAGES: [MigrationStage; 3] = [
    MigrationStage::Start,
    MigrationStage::Stream,
    MigrationStage::Commit,
];

fn quick_sim() -> SimConfig {
    SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::millis(3_900),
        ..SimConfig::default()
    }
}

fn assert_clean(out: &MigrationOutcome) {
    let ctx = format!(
        "{} victim={} stage={} mode={} seed={} digest={:#x}\nschedule:\n{}\nepochs: {:?}",
        out.proto,
        out.victim.label(),
        out.stage.label(),
        out.mode.label(),
        out.seed,
        out.digest(),
        out.steps.join("\n"),
        out.audit.routing_epochs,
    );
    assert!(
        out.anomalies.is_empty(),
        "{} anomalies, first {:?}\n{ctx}",
        out.anomalies.len(),
        out.anomalies.first(),
    );
    assert!(out.tail_completed > 0, "no progress after heal\n{ctx}");
    assert_eq!(
        out.unexplained_drops, 0,
        "unattributed message losses\n{ctx}"
    );
    assert!(out.cut_over_complete(), "hand-off did not complete\n{ctx}");
    assert!(
        out.audit.dual_ownership.is_empty(),
        "dual ownership: {:?}\n{ctx}",
        out.audit.dual_ownership
    );
    assert!(
        out.audit.orphaned.is_empty(),
        "orphaned writes: {:?}\n{ctx}",
        out.audit.orphaned
    );
    assert!(
        out.audit.leakage.is_empty(),
        "cross-shard leakage: {:?}\n{ctx}",
        out.audit.leakage
    );
}

fn run_suite(proto: ShardProto, mode: CrashMode, seed: u64) {
    for victim in VICTIMS {
        for stage in STAGES {
            let cfg = MigrationConfig {
                seed,
                mode,
                ..Default::default()
            };
            assert_clean(&run_migration_nemesis(
                proto,
                quick_sim(),
                &cfg,
                victim,
                stage,
            ));
        }
    }
}

// --- the nemesis matrix: {Paxos, Raft} x {freeze, amnesia} x 3 victims
// --- x 3 stages ---

#[test]
fn paxos_migration_nemesis_freeze() {
    run_suite(ShardProto::Paxos, CrashMode::Freeze, 1);
}

#[test]
fn paxos_migration_nemesis_amnesia() {
    run_suite(ShardProto::Paxos, CrashMode::Amnesia, 1);
}

#[test]
fn raft_migration_nemesis_freeze() {
    run_suite(ShardProto::Raft, CrashMode::Freeze, 1);
}

#[test]
fn raft_migration_nemesis_amnesia() {
    run_suite(ShardProto::Raft, CrashMode::Amnesia, 1);
}

// --- crash recovery: the amnesia victim rebuilds the hand-off from WAL ---

#[test]
fn amnesia_source_leader_recovers_into_the_handed_off_world() {
    // The node driving the hand-off is wiped around the commit halves and
    // rebuilt from its WAL namespaces; after healing it must itself report
    // the target routing epoch — a node that recovered "into the old
    // ownership" would still route the range to the source group.
    for proto in [ShardProto::Paxos, ShardProto::Raft] {
        let cfg = MigrationConfig {
            seed: 1,
            mode: CrashMode::Amnesia,
            ..Default::default()
        };
        let out = run_migration_nemesis(
            proto,
            quick_sim(),
            &cfg,
            MigrationVictim::SourceLeader,
            MigrationStage::Commit,
        );
        assert_clean(&out);
        // The source leader is node 0 under spread placement.
        assert!(
            out.audit.routing_epochs[0] >= out.spec.epoch,
            "{}: recovered source leader still routes at epoch {} (target {})",
            out.proto,
            out.audit.routing_epochs[0],
            out.spec.epoch
        );
    }
}

#[test]
fn second_seed_sweeps_the_source_leader_victim() {
    // The source leader is the hardest cell (the hand-off's driver dies);
    // sweep it across an extra seed on both protocols and modes.
    for proto in [ShardProto::Paxos, ShardProto::Raft] {
        for mode in [CrashMode::Freeze, CrashMode::Amnesia] {
            let cfg = MigrationConfig {
                seed: 7,
                mode,
                ..Default::default()
            };
            assert_clean(&run_migration_nemesis(
                proto,
                quick_sim(),
                &cfg,
                MigrationVictim::SourceLeader,
                MigrationStage::Stream,
            ));
        }
    }
}

// --- determinism fingerprints ---

fn fingerprint(r: &SimReport) -> (u64, u64, u64, String) {
    let digest = r
        .ops
        .iter()
        .take(50)
        .map(|o| format!("{}:{}:{}:{}", o.client, o.key, o.invoke.0, o.ret.0))
        .collect::<Vec<_>>()
        .join(",");
    (r.completed, r.events_processed, r.latency.mean.0, digest)
}

/// A sharded Paxos factory with the migration plumbing fully wired: every
/// inner replica is told its group identity, exactly as the bench
/// dispatcher builds clusters.
fn migration_aware_factory(
    cluster: &ClusterConfig,
    key_space: u64,
    groups: u32,
) -> impl Fn(NodeId) -> ShardedReplica<MultiPaxos> {
    let cl = cluster.clone();
    sharded_cluster(
        ShardSpec::range(key_space, groups),
        move |id: NodeId, g: GroupId| {
            let cfg = PaxosConfig {
                initial_leader: spread_leader(&cl, g),
                ..PaxosConfig::default()
            };
            let mut r = MultiPaxos::new(id, cl.clone(), cfg);
            r.set_group(g);
            r
        },
    )
}

#[test]
fn single_group_without_migration_keeps_the_static_fingerprint() {
    // The routing-epoch plumbing must be a numeric no-op while no migration
    // is in flight: the routing table has no overrides to consult, the
    // control timer never arms, and the trackers (group identity set or
    // not) see no records. A groups=1 deployment therefore replays the
    // unsharded event sequence exactly — even when the workload carries an
    // elided (invalid, same-group) kick-off.
    let cluster = ClusterConfig::lan(5);
    let sim = SimConfig {
        seed: 7,
        record_ops: true,
        warmup: Nanos::millis(200),
        measure: Nanos::secs(1),
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);

    let cl = cluster.clone();
    let mut plain = Simulator::new(
        sim.clone(),
        cluster.clone(),
        move |id: NodeId| MultiPaxos::new(id, cl.clone(), PaxosConfig::default()),
        uniform_workload(50),
        clients.clone(),
    );
    let unsharded = plain.run();

    let mut wrapped = Simulator::new(
        sim.clone(),
        cluster.clone(),
        migration_aware_factory(&cluster, 50, 1),
        uniform_workload(50),
        clients.clone(),
    );
    let sharded = wrapped.run();
    assert_eq!(
        fingerprint(&unsharded),
        fingerprint(&sharded),
        "a single-group run with migration plumbing must be event-identical \
         to the unsharded protocol"
    );

    let noop = MigrationSpec {
        id: 9,
        from: GroupId(0),
        to: GroupId(0), // same group: invalid, the workload elides it
        range: KeyRange::new(10, 20),
        epoch: 1,
    };
    assert!(!noop.is_valid());
    let mut elided = Simulator::new(
        sim,
        cluster.clone(),
        migration_aware_factory(&cluster, 50, 1),
        MigrationWorkload::new(uniform_workload(50), ClientId(0), Nanos::millis(500), noop),
        clients,
    );
    let with_elided = elided.run();
    assert_eq!(
        fingerprint(&unsharded),
        fingerprint(&with_elided),
        "an elided migration kick-off must not perturb the simulation"
    );
}

#[test]
fn real_migration_replays_identically_under_the_same_seed() {
    let cfg = MigrationConfig {
        seed: 42,
        ..Default::default()
    };
    let a = run_migration_nemesis(
        ShardProto::Paxos,
        quick_sim(),
        &cfg,
        MigrationVictim::DestLeader,
        MigrationStage::Stream,
    );
    let b = run_migration_nemesis(
        ShardProto::Paxos,
        quick_sim(),
        &cfg,
        MigrationVictim::DestLeader,
        MigrationStage::Stream,
    );
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(
        a.completed, b.completed,
        "same seed must replay identically"
    );
    assert_eq!(a.tail_completed, b.tail_completed);
    assert_eq!(a.audit.routing_epochs, b.audit.routing_epochs);
}

// --- CI artifact: verdict digests for the migration-smoke job ---

#[test]
fn write_migration_digest_artifact() {
    let mut lines = Vec::new();
    for proto in [ShardProto::Paxos, ShardProto::Raft] {
        for victim in VICTIMS {
            for stage in STAGES {
                let cfg = MigrationConfig {
                    seed: 1,
                    ..Default::default()
                };
                let out = run_migration_nemesis(proto, quick_sim(), &cfg, victim, stage);
                lines.push(format!(
                    "proto={} victim={} stage={} mode={} seed={} digest={:#018x} passed={}",
                    out.proto,
                    out.victim.label(),
                    out.stage.label(),
                    out.mode.label(),
                    out.seed,
                    out.digest(),
                    out.passed(),
                ));
                assert!(out.passed(), "smoke cell failed: {}", lines.last().unwrap());
            }
        }
    }
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/migration_digests.txt", lines.join("\n") + "\n")
        .expect("write digest artifact");
}
