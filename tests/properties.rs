//! Property-based tests over the core data structures and invariants.

use paxi::codec;
use paxi::core::dist::{KeyDist, KeySampler, Rng64};
use paxi::core::metrics::Histogram;
use paxi::core::quorum::{FlexibleGridQuorum, GridPhase, QuorumTracker};
use paxi::core::store::MultiVersionStore;
use paxi::core::{Ballot, Command, GroupId, Nanos, NodeId};
use paxi::shard::{HashPartitioner, Partitioner, RangePartitioner};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

// proptest_derive is not in the offline set; build an arbitrary-by-hand
// strategy instead.
mod arb {
    use super::*;

    pub fn wire_blob() -> impl Strategy<Value = super::Blob> {
        (
            any::<u8>(),
            any::<i64>(),
            ".{0,32}",
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::option::of((any::<u32>(), ".{0,8}")),
            proptest::collection::vec(proptest::option::of(any::<bool>()), 0..8),
        )
            .prop_map(|(a, b, c, d, e, f)| super::Blob { a, b, c, d, e, f })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Blob {
    a: u8,
    b: i64,
    c: String,
    d: Vec<u8>,
    e: Option<(u32, String)>,
    f: Vec<Option<bool>>,
}

proptest! {
    #[test]
    fn codec_roundtrips_arbitrary_structures(blob in arb::wire_blob()) {
        let bytes = codec::to_bytes(&blob).unwrap();
        let back: Blob = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(blob, back);
    }

    #[test]
    fn codec_rejects_truncation(blob in arb::wire_blob()) {
        let bytes = codec::to_bytes(&blob).unwrap();
        if bytes.len() > 1 {
            // Truncating the payload must never decode into a full value
            // plus zero remaining bytes (i.e. from_bytes must error).
            let r: codec::Result<Blob> = codec::from_bytes(&bytes[..bytes.len() - 1]);
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded(
        mut samples in proptest::collection::vec(1u64..10_000_000_000, 1..200)
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Nanos(s));
        }
        samples.sort_unstable();
        let (min, max) = (samples[0], *samples.last().unwrap());
        prop_assert_eq!(h.min().0, min);
        prop_assert_eq!(h.max().0, max);
        let p50 = h.p50().0;
        let p99 = h.p99().0;
        prop_assert!(p50 <= p99);
        prop_assert!(p50 >= min && p99 <= max);
        // Quantile error is bounded by the bucket width (<1% relative).
        // `samples` here is the retired sort-the-whole-vector path, kept in
        // tests only to cross-check the bounded-memory histogram.
        let exact50 = samples[(samples.len() - 1) / 2] as f64;
        prop_assert!((p50 as f64) <= exact50 * 1.01 + 1.0);
        let rank99 = ((0.99 * samples.len() as f64).ceil() as usize).max(1) - 1;
        let exact99 = samples[rank99] as f64;
        prop_assert!((p99 as f64) <= exact99 * 1.01 + 1.0);
        prop_assert!((p99 as f64) >= exact99 * 0.99 - 1.0);
    }

    #[test]
    fn flexible_grid_quorums_always_intersect(
        zones in 1u8..6,
        per_zone in 1u8..6,
        f_raw in 0u8..5,
        fz_raw in 0u8..5,
        pick in any::<u64>(),
    ) {
        let f = f_raw % per_zone;
        let fz = fz_raw % zones;
        // Build one minimal q1 and one minimal q2 from a pseudo-random pick
        // and verify they share a node.
        let mut rng = Rng64::seed(pick);
        let minimal = |phase: GridPhase, rng: &mut Rng64| -> Vec<NodeId> {
            let q = FlexibleGridQuorum::new(zones, per_zone, f, fz, phase);
            // choose zone subset
            let mut zs: Vec<u8> = (0..zones).collect();
            for i in (1..zs.len()).rev() {
                let j = (rng.below((i + 1) as u64)) as usize;
                zs.swap(i, j);
            }
            let zs = &zs[..q.zone_threshold()];
            let mut members = Vec::new();
            for &z in zs {
                let mut ns: Vec<u8> = (0..per_zone).collect();
                for i in (1..ns.len()).rev() {
                    let j = (rng.below((i + 1) as u64)) as usize;
                    ns.swap(i, j);
                }
                for &n in &ns[..q.per_zone_threshold()] {
                    members.push(NodeId::new(z, n));
                }
            }
            members
        };
        let q1 = minimal(GridPhase::One, &mut rng);
        let q2 = minimal(GridPhase::Two, &mut rng);
        prop_assert!(
            q1.iter().any(|n| q2.contains(n)),
            "q1 {:?} and q2 {:?} must intersect (z={} n={} f={} fz={})",
            q1, q2, zones, per_zone, f, fz
        );
        // And each satisfies its own tracker.
        let mut t1 = FlexibleGridQuorum::new(zones, per_zone, f, fz, GridPhase::One);
        for &n in &q1 { t1.ack(n); }
        prop_assert!(t1.satisfied());
        let mut t2 = FlexibleGridQuorum::new(zones, per_zone, f, fz, GridPhase::Two);
        for &n in &q2 { t2.ack(n); }
        prop_assert!(t2.satisfied());
    }

    #[test]
    fn store_history_is_append_only_and_parent_linked(
        ops in proptest::collection::vec((0u64..5, any::<bool>(), any::<u8>()), 1..100)
    ) {
        let mut store = MultiVersionStore::new();
        let mut lengths = std::collections::HashMap::new();
        for (key, is_put, val) in ops {
            if is_put {
                store.execute(&Command::put(key, vec![val]));
            } else {
                store.execute(&Command::get(key));
            }
            let h = store.history(key);
            let prev = lengths.insert(key, h.len()).unwrap_or(0);
            prop_assert!(h.len() >= prev, "history shrank");
            for (i, v) in h.iter().enumerate() {
                prop_assert_eq!(v.seq, i as u64 + 1);
                prop_assert_eq!(v.parent, i as u64);
            }
        }
    }

    #[test]
    fn ballots_are_totally_ordered_and_next_increases(
        c1 in 0u32..1000, z1 in 0u8..4, n1 in 0u8..4,
        c2 in 0u32..1000, z2 in 0u8..4, n2 in 0u8..4,
    ) {
        let a = Ballot { counter: c1, id: NodeId::new(z1, n1) };
        let b = Ballot { counter: c2, id: NodeId::new(z2, n2) };
        // next() always outbids both operands.
        let na = b.next(a.id);
        prop_assert!(na > b);
        // Total order is antisymmetric.
        if a != b {
            prop_assert!((a < b) != (b < a));
        }
    }

    #[test]
    fn key_samplers_stay_in_range(
        k in 1u64..5000,
        seed in any::<u64>(),
        skew in 1u32..40,
    ) {
        let mut rng = Rng64::seed(seed);
        for dist in [
            KeyDist::Uniform,
            KeyDist::Normal { mu: (k / 2) as f64, sigma: k as f64 / skew as f64 },
            KeyDist::Zipfian { s: 1.0 + skew as f64 / 20.0, v: 1.0 },
            KeyDist::Exponential { rate: skew as f64 / k as f64 },
        ] {
            let sampler = KeySampler::new(k, dist);
            for _ in 0..50 {
                prop_assert!(sampler.sample(&mut rng) < k);
            }
        }
    }

    #[test]
    fn sequential_histories_never_trigger_the_checker(
        vals in proptest::collection::vec(any::<u8>(), 1..40)
    ) {
        // A strictly sequential single-client history (write then read, no
        // overlap) is trivially linearizable.
        use paxi::sim::OpRecord;
        use paxi_core::id::ClientId;
        let mut ops = Vec::new();
        let mut t = 0u64;
        let mut last: Option<Vec<u8>>;
        for (i, v) in vals.iter().enumerate() {
            let value = vec![*v, i as u8]; // unique per write
            ops.push(OpRecord {
                client: ClientId(0),
                key: 1,
                write: Some(value.clone()),
                read: None,
                invoke: Nanos(t),
                ret: Nanos(t + 5),
                ok: true,
            });
            t += 10;
            last = Some(value);
            ops.push(OpRecord {
                client: ClientId(0),
                key: 1,
                write: None,
                read: Some(last.clone()),
                invoke: Nanos(t),
                ret: Nanos(t + 5),
                ok: true,
            });
            t += 10;
        }
        prop_assert!(paxi::bench::check_linearizability(&ops).is_empty());
    }

    #[test]
    fn rng_fork_streams_do_not_correlate(seed in any::<u64>()) {
        let mut root = Rng64::seed(seed);
        let mut a = root.fork();
        let mut b = root.fork();
        let mut equal = 0;
        for _ in 0..64 {
            if a.next_u64() == b.next_u64() {
                equal += 1;
            }
        }
        prop_assert!(equal < 4, "forked streams look correlated");
    }

    // --- codec robustness: the WAL's foundation ---
    //
    // A recovering replica feeds whatever bytes survived the crash straight
    // into the codec, so deserialization must *fail*, never panic, on
    // garbage: random bytes, truncations, and single-bit flips of valid
    // encodings.

    #[test]
    fn from_bytes_never_panics_on_random_input(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        // Ok (a coincidentally valid encoding) and Err are both fine; only
        // a panic fails the test.
        let _ = codec::from_bytes::<Blob>(&bytes);
        let _ = codec::from_bytes::<paxi::protocols::paxos::PaxosWal>(&bytes);
        let _ = codec::from_bytes::<paxi::protocols::raft::RaftWal>(&bytes);
        let _ = codec::from_bytes::<paxi::protocols::epaxos::EpaxosWal>(&bytes);
    }

    #[test]
    fn from_bytes_never_panics_on_bit_flips(
        blob in arb::wire_blob(),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = codec::to_bytes(&blob).unwrap();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = codec::from_bytes::<Blob>(&bytes);
    }

    #[test]
    fn from_bytes_never_panics_on_truncation(
        blob in arb::wire_blob(),
        cut in any::<usize>(),
    ) {
        let bytes = codec::to_bytes(&blob).unwrap();
        let keep = cut % (bytes.len() + 1);
        let _ = codec::from_bytes::<Blob>(&bytes[..keep]);
    }

    #[test]
    fn frame_decoder_never_panics_on_arbitrary_chunks(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8
        )
    ) {
        let mut d = codec::FrameDecoder::new();
        for chunk in &chunks {
            d.feed(chunk);
            // Drain until the decoder wants more bytes or rejects the
            // stream (e.g. a length prefix beyond MAX_FRAME) — never panic.
            loop {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn frame_decoder_never_panics_on_corrupted_frames(
        blob in arb::wire_blob(),
        idx in any::<usize>(),
        split in any::<usize>(),
    ) {
        let mut frame = codec::encode_frame(&codec::to_bytes(&blob).unwrap());
        let i = idx % frame.len();
        frame[i] ^= 0x40;
        let mut d = codec::FrameDecoder::new();
        let at = split % (frame.len() + 1);
        for chunk in [&frame[..at], &frame[at..]] {
            d.feed(chunk);
            loop {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    // --- WAL record round-trips: what the protocols actually persist ---

    #[test]
    fn paxos_wal_records_round_trip(
        slot in any::<u64>(),
        counter in 1u32..10_000,
        zone in 0u8..4, node in 0u8..4,
        key in any::<u64>(),
        val in proptest::collection::vec(any::<u8>(), 0..32),
        client in any::<u32>(), seq in any::<u64>(),
        has_req in any::<bool>(),
    ) {
        use paxi::core::{ClientId, RequestId};
        use paxi::protocols::paxos::PaxosWal;
        let ballot = Ballot { counter, id: NodeId::new(zone, node) };
        let req = has_req.then(|| RequestId::new(ClientId(client), seq));
        for rec in [
            PaxosWal::Ballot(ballot),
            PaxosWal::Accept { slot, ballot, cmds: vec![(Command::put(key, val), req)] },
        ] {
            let bytes = codec::to_bytes(&rec).unwrap();
            let back: PaxosWal = codec::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &rec);
            if bytes.len() > 1 {
                let r: codec::Result<PaxosWal> = codec::from_bytes(&bytes[..bytes.len() - 1]);
                prop_assert!(r.is_err(), "truncated WAL record must not decode");
            }
        }
    }

    #[test]
    fn raft_wal_records_round_trip(
        term in any::<u64>(),
        prev_index in any::<u64>(),
        voted in proptest::option::of((0u8..4, 0u8..4)),
        entries in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..16)), 0..8
        ),
    ) {
        use paxi::protocols::raft::{RaftEntry, RaftWal};
        let entries: Vec<RaftEntry> = entries
            .into_iter()
            .map(|(t, k, v)| RaftEntry { term: t, cmd: Command::put(k, v), req: None })
            .collect();
        for rec in [
            RaftWal::Term { term, voted_for: voted.map(|(z, n)| NodeId::new(z, n)) },
            RaftWal::Splice { prev_index, entries },
        ] {
            let bytes = codec::to_bytes(&rec).unwrap();
            let back: RaftWal = codec::from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &rec);
        }
    }

    // --- group-tagged envelopes: the sharded runtime's wire format ---
    //
    // A sharded deployment multiplexes every group of a node pair over one
    // link by wrapping protocol messages in `GroupMsg`. The envelope must
    // round-trip exactly (tag and payload), and the frame decoder must
    // *fail*, never panic, when group-tagged frames arrive truncated or
    // bit-flipped — a byzantine-free but faulty network is in scope.

    #[test]
    fn group_tagged_envelopes_round_trip(
        group in any::<u32>(),
        blob in arb::wire_blob(),
    ) {
        use paxi::core::{GroupId, GroupMsg};
        let env = GroupMsg::new(GroupId(group), blob);
        let bytes = codec::to_bytes(&env).unwrap();
        let back: GroupMsg<Blob> = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.group, env.group, "group tag must survive the wire");
        prop_assert_eq!(back.msg, env.msg);
        // Truncation must error, not mis-tag: a clipped envelope can never
        // decode into a full (group, msg) pair.
        if bytes.len() > 1 {
            let r: codec::Result<GroupMsg<Blob>> = codec::from_bytes(&bytes[..bytes.len() - 1]);
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn frame_decoder_never_panics_on_truncated_group_frames(
        group in any::<u32>(),
        blob in arb::wire_blob(),
        cut in any::<usize>(),
        split in any::<usize>(),
    ) {
        use paxi::core::{GroupId, GroupMsg};
        let env = GroupMsg::new(GroupId(group), blob);
        let frame = codec::encode_frame(&codec::to_bytes(&env).unwrap());
        let keep = cut % (frame.len() + 1);
        let frame = &frame[..keep];
        let mut d = codec::FrameDecoder::new();
        let at = split % (frame.len() + 1);
        for chunk in [&frame[..at], &frame[at..]] {
            d.feed(chunk);
            loop {
                match d.next_frame() {
                    // A complete frame from a truncated stream can only be
                    // the full original; decoding must still not panic.
                    Ok(Some(payload)) => {
                        let _ = codec::from_bytes::<GroupMsg<Blob>>(&payload);
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn frame_decoder_never_panics_on_bit_flipped_group_frames(
        group in any::<u32>(),
        blob in arb::wire_blob(),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        use paxi::core::{GroupId, GroupMsg};
        let env = GroupMsg::new(GroupId(group), blob);
        let mut frame = codec::encode_frame(&codec::to_bytes(&env).unwrap());
        let i = idx % frame.len();
        frame[i] ^= 1 << bit;
        let mut d = codec::FrameDecoder::new();
        d.feed(&frame);
        loop {
            match d.next_frame() {
                // A flip in the payload may still frame correctly; the
                // envelope decode must then error or succeed, never panic.
                Ok(Some(payload)) => {
                    let _ = codec::from_bytes::<GroupMsg<Blob>>(&payload);
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    // --- membership payloads & config WAL records (reconfiguration) ---
    //
    // A mid-reconfiguration crash hands recovery whatever config bytes
    // survived; like the codec itself, the hand-rolled membership payload
    // decoders must round-trip exactly and *fail*, never panic, on
    // truncations and bit flips.

    #[test]
    fn config_change_payloads_round_trip_and_reject_garbage(
        add in proptest::collection::vec((0u8..4, 0u8..8), 0..5),
        remove in proptest::collection::vec((0u8..4, 0u8..8), 0..5),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        use paxi::core::membership::ConfigChange;
        let change = ConfigChange {
            add: add.into_iter().map(|(z, n)| NodeId::new(z, n)).collect(),
            remove: remove.into_iter().map(|(z, n)| NodeId::new(z, n)).collect(),
        };
        let bytes = change.encode();
        prop_assert_eq!(ConfigChange::decode(&bytes), Some(change.clone()));
        // Every truncation must reject (the node counts are explicit, so a
        // clipped payload can never satisfy them) — and never panic.
        for keep in 0..bytes.len() {
            prop_assert!(ConfigChange::decode(&bytes[..keep]).is_none());
        }
        // A bit flip decodes to something-or-nothing, never a panic.
        let mut flipped = bytes.clone();
        let i = idx % flipped.len();
        flipped[i] ^= 1 << bit;
        let _ = ConfigChange::decode(&flipped);
        // Trailing garbage must reject too.
        let mut padded = bytes;
        padded.push(0);
        prop_assert!(ConfigChange::decode(&padded).is_none());
    }

    #[test]
    fn membership_payloads_round_trip_and_reject_garbage(
        epoch in any::<u64>(),
        old in proptest::collection::vec((0u8..4, 0u8..8), 0..5),
        new in proptest::collection::vec((0u8..4, 0u8..8), 0..5),
        idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        use paxi::core::membership::Membership;
        let old: Vec<NodeId> = old.into_iter().map(|(z, n)| NodeId::new(z, n)).collect();
        let new: Vec<NodeId> = new.into_iter().map(|(z, n)| NodeId::new(z, n)).collect();
        for m in [
            Membership::Stable { epoch, members: old.clone() },
            Membership::Joint { epoch, old, new },
        ] {
            let bytes = m.encode();
            prop_assert_eq!(Membership::decode(&bytes), Some(m.clone()));
            for keep in 0..bytes.len() {
                prop_assert!(Membership::decode(&bytes[..keep]).is_none());
            }
            let mut flipped = bytes.clone();
            let i = idx % flipped.len();
            flipped[i] ^= 1 << bit;
            let _ = Membership::decode(&flipped);
            let mut padded = bytes;
            padded.push(0);
            prop_assert!(Membership::decode(&padded).is_none());
        }
    }

    #[test]
    fn membership_wal_records_round_trip(
        slot in any::<u64>(),
        epoch in any::<u64>(),
        index in any::<u64>(),
        members in proptest::collection::vec((0u8..4, 0u8..8), 0..6),
        joint in any::<bool>(),
    ) {
        use paxi::core::membership::Membership;
        use paxi::protocols::paxos::PaxosWal;
        use paxi::protocols::raft::RaftWal;
        let members: Vec<NodeId> =
            members.into_iter().map(|(z, n)| NodeId::new(z, n)).collect();

        let rec = PaxosWal::Config { slot, epoch, members: members.clone() };
        let bytes = codec::to_bytes(&rec).unwrap();
        let back: PaxosWal = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &rec);
        if bytes.len() > 1 {
            let r: codec::Result<PaxosWal> = codec::from_bytes(&bytes[..bytes.len() - 1]);
            prop_assert!(r.is_err(), "truncated config record must not decode");
        }

        let membership = if joint {
            Membership::Joint { epoch, old: members.clone(), new: members }
        } else {
            Membership::Stable { epoch, members }
        };
        let rec = RaftWal::Membership { index, membership };
        let bytes = codec::to_bytes(&rec).unwrap();
        let back: RaftWal = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &rec);
        if bytes.len() > 1 {
            let r: codec::Result<RaftWal> = codec::from_bytes(&bytes[..bytes.len() - 1]);
            prop_assert!(r.is_err(), "truncated membership record must not decode");
        }
    }

    #[test]
    fn epaxos_wal_records_round_trip(
        zone in 0u8..4, node in 0u8..4,
        idx in any::<u64>(),
        key in any::<u64>(),
        seq in any::<u64>(),
        deps in proptest::collection::vec((0u8..4, 0u8..4, any::<u64>()), 0..8),
        status_pick in 0u8..3,
    ) {
        use paxi::protocols::epaxos::{EpaxosWal, IRef, WalStatus};
        let status = match status_pick {
            0 => WalStatus::PreAccepted,
            1 => WalStatus::Accepted,
            _ => WalStatus::Committed,
        };
        let rec = EpaxosWal {
            iref: IRef { leader: NodeId::new(zone, node), idx },
            cmd: Command::get(key),
            seq,
            deps: deps
                .into_iter()
                .map(|(z, n, i)| IRef { leader: NodeId::new(z, n), idx: i })
                .collect(),
            status,
        };
        let bytes = codec::to_bytes(&rec).unwrap();
        let back: EpaxosWal = codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn hash_partitioner_is_total_and_owns_agrees_with_group_of(
        groups in 1u32..64,
        key in any::<u64>(),
        probe in 0u32..64,
    ) {
        // Every key maps to exactly one in-range group, and `owns` is the
        // characteristic function of `group_of` — no key is unowned, none
        // is owned twice.
        let p = HashPartitioner::new(groups);
        prop_assert_eq!(p.groups(), groups);
        let g = p.group_of(key);
        prop_assert!(g.0 < groups, "group {} out of range", g.0);
        prop_assert!(p.owns(g, key));
        let other = GroupId(probe % groups);
        prop_assert_eq!(p.owns(other, key), other == g);
    }

    #[test]
    fn range_partitioner_is_total_and_owns_agrees_with_group_of(
        key_space in 1u64..100_000,
        groups in 1u32..32,
        key in any::<u64>(),
        probe in 0u32..32,
    ) {
        // Totality holds even for keys beyond the declared key space (the
        // last group absorbs them — routing must never panic on a key the
        // workload was not supposed to produce).
        let p = RangePartitioner::even(key_space, groups);
        prop_assert_eq!(p.groups(), groups);
        let g = p.group_of(key);
        prop_assert!(g.0 < groups, "group {} out of range", g.0);
        prop_assert!(p.owns(g, key));
        let other = GroupId(probe % groups);
        prop_assert_eq!(p.owns(other, key), other == g);
    }

    #[test]
    fn range_partitioner_edges_agree_with_group_of(
        key_space in 1u64..100_000,
        groups in 1u32..32,
    ) {
        // `range(g)` and `group_of` must tell the same story at every
        // boundary: the first and last key of each slice belong to it, and
        // the first key past it belongs to the next group — migrations cut
        // ranges exactly at these edges.
        let p = RangePartitioner::even(key_space, groups);
        for gi in 0..groups {
            let g = GroupId(gi);
            let (lo, hi) = p.range(g);
            prop_assert!(lo < hi, "group {gi} has an empty slice [{lo}, {hi})");
            prop_assert_eq!(p.group_of(lo), g);
            prop_assert_eq!(p.group_of(hi - 1), g);
            prop_assert!(p.owns(g, lo) && p.owns(g, hi - 1));
            if gi + 1 < groups {
                prop_assert_eq!(p.group_of(hi), GroupId(gi + 1));
                prop_assert!(!p.owns(g, hi));
            }
        }
    }

    #[test]
    fn single_group_partitioners_map_everything_to_group_0(
        key_space in 1u64..100_000,
        key in any::<u64>(),
    ) {
        // groups = 1 is the unsharded degenerate case: every key lands in
        // group 0 under both partitioners, so the sharded envelope routes
        // exactly like the plain protocol.
        let hash = HashPartitioner::new(1);
        prop_assert_eq!(hash.group_of(key), GroupId(0));
        prop_assert!(hash.owns(GroupId(0), key));
        let range = RangePartitioner::even(key_space, 1);
        prop_assert_eq!(range.group_of(key), GroupId(0));
        prop_assert!(range.owns(GroupId(0), key));
    }
}
