//! Wall-clock transports: the same replica code over channels, TCP, and UDP.

use paxi::core::{ClusterConfig, NodeId};
use paxi::protocols::epaxos::EPaxos;
use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi::transport::{InProcCluster, TcpCluster, UdpCluster};

#[test]
fn channel_tcp_udp_agree_on_committed_state() {
    let value = |t: u8, i: u8| vec![t, i, 0xAB];

    // Channels.
    let cluster = ClusterConfig::lan(3);
    let chan = InProcCluster::launch(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
    );
    let mut c = chan.client(NodeId::new(0, 0));
    for i in 0..10u8 {
        assert!(c.put(i as u64, value(0, i)).expect("channel put").ok);
    }
    for i in 0..10u8 {
        assert_eq!(c.get(i as u64).expect("channel get").value, Some(value(0, i)));
    }
    chan.shutdown();

    // TCP.
    let cluster = ClusterConfig::lan(3);
    let tcp = TcpCluster::launch(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
    )
    .expect("tcp launch");
    let mut c = tcp.client(NodeId::new(0, 0)).expect("tcp client");
    for i in 0..10u8 {
        assert!(c.put(i as u64, value(1, i)).expect("tcp put").ok);
    }
    for i in 0..10u8 {
        assert_eq!(c.get(i as u64).expect("tcp get").value, Some(value(1, i)));
    }
    tcp.shutdown();

    // UDP.
    let cluster = ClusterConfig::lan(3);
    let udp = UdpCluster::launch(
        cluster.clone(),
        paxos_cluster(cluster.clone(), PaxosConfig::default()),
    )
    .expect("udp launch");
    let mut c = udp.client(NodeId::new(0, 0)).expect("udp client");
    for i in 0..10u8 {
        assert!(c.put(i as u64, value(2, i)).expect("udp put").ok);
    }
    for i in 0..10u8 {
        assert_eq!(c.get(i as u64).expect("udp get").value, Some(value(2, i)));
    }
    udp.shutdown();
}

#[test]
fn epaxos_runs_over_tcp() {
    let cluster = ClusterConfig::lan(5);
    let run = TcpCluster::launch(cluster.clone(), move |id: NodeId| {
        EPaxos::new(id, cluster.clone())
    })
    .expect("launch");
    let mut a = run.client(NodeId::new(0, 0)).expect("client a");
    let mut b = run.client(NodeId::new(0, 3)).expect("client b");
    assert!(a.put(1, b"from-a".to_vec()).expect("a put").ok);
    assert!(b.put(2, b"from-b".to_vec()).expect("b put").ok);
    assert_eq!(a.get(2).expect("a reads b").value, Some(b"from-b".to_vec()));
    assert_eq!(b.get(1).expect("b reads a").value, Some(b"from-a".to_vec()));
    run.shutdown();
}

#[test]
fn wpaxos_runs_over_channels_with_zone_forwarding() {
    use paxi::protocols::wpaxos::{wpaxos_cluster, WPaxosConfig};
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let run = InProcCluster::launch(
        cluster.clone(),
        wpaxos_cluster(cluster.clone(), WPaxosConfig::default()),
    );
    // Client attached to a non-leader member of zone 1.
    let mut c = run.client(NodeId::new(1, 2));
    for i in 0..5u64 {
        assert!(c.put(i, vec![i as u8]).expect("put").ok);
    }
    assert_eq!(c.get(3).expect("get").value, Some(vec![3]));
    run.shutdown();
}

#[test]
fn protocol_messages_roundtrip_through_the_codec() {
    use paxi::core::{Ballot, Command, RequestId};
    use paxi::protocols::paxos::PaxosMsg;
    use paxi_core::id::ClientId;
    let msgs = vec![
        PaxosMsg::P1a { ballot: Ballot::first(NodeId::new(1, 2)) },
        PaxosMsg::P1b {
            ballot: Ballot::first(NodeId::new(0, 0)),
            tail: vec![(
                7,
                Ballot::first(NodeId::new(0, 1)),
                vec![(Command::put(42, vec![1, 2, 3]), Some(RequestId::new(ClientId(9), 100)))],
            )],
        },
        PaxosMsg::P2a {
            ballot: Ballot::first(NodeId::new(2, 2)),
            slot: 123,
            cmds: vec![
                (Command::delete(5), None),
                (Command::put(6, vec![9]), Some(RequestId::new(ClientId(1), 2))),
            ],
            commit_upto: 120,
        },
        PaxosMsg::Commit { upto: 99 },
    ];
    for msg in &msgs {
        let bytes = paxi::codec::to_bytes(msg).expect("encode");
        let back: PaxosMsg = paxi::codec::from_bytes(&bytes).expect("decode");
        // PaxosMsg doesn't derive PartialEq; compare debug output.
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }
}
