//! The simulator must be bit-for-bit reproducible from its seed — that's
//! what makes the evaluation harness's numbers trustworthy.

use paxi::bench::{run, GeneralWorkload, Proto};
use paxi::bench::BenchmarkConfig;
use paxi::core::{ClusterConfig, Nanos};
use paxi::sim::{ClientSetup, SimConfig, Topology};

fn fingerprint(proto: &Proto, seed: u64) -> (u64, u64, u64, String) {
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let sim = SimConfig {
        seed,
        topology: Topology::lan_zones(3),
        warmup: Nanos::millis(200),
        measure: Nanos::secs(1),
        record_ops: true,
        ..SimConfig::default()
    };
    let clients = ClientSetup::closed_per_zone(&cluster, 3);
    let report = run(
        proto,
        sim,
        cluster,
        GeneralWorkload::new(BenchmarkConfig::uniform(50, 0.5), 3),
        clients,
    );
    let op_digest = report
        .ops
        .iter()
        .take(50)
        .map(|o| format!("{}:{}:{}", o.client, o.key, o.invoke.0))
        .collect::<Vec<_>>()
        .join(",");
    (report.completed, report.events_processed, report.latency.mean.0, op_digest)
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    for proto in [
        Proto::paxos(),
        Proto::epaxos(),
        Proto::WPaxos(Default::default()),
        Proto::WanKeeper(Default::default()),
        Proto::VPaxos(Default::default()),
    ] {
        let a = fingerprint(&proto, 1234);
        let b = fingerprint(&proto, 1234);
        assert_eq!(a, b, "{} is not deterministic", proto.name());
    }
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(&Proto::paxos(), 1);
    let b = fingerprint(&Proto::paxos(), 2);
    assert_ne!(a.3, b.3, "different seeds should produce different op interleavings");
}
