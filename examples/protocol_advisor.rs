//! The paper's Figure 14 flowchart as a command-line advisor.
//!
//! Run with:
//!
//! ```text
//! cargo run --example protocol_advisor -- --wan --locality --dynamic --dc-failure
//! ```
//!
//! Flags: `--no-consensus`, `--wan`, `--read-heavy`, `--locality`,
//! `--dynamic`, `--dc-failure`. Omitted flags default to "no". With no
//! arguments, prints the recommendation for every path plus the
//! back-of-the-envelope load/latency numbers from the §6 formulas.

use paxi::model::advisor::{recommend, Answers};
use paxi::model::formulas;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        all_paths();
        return;
    }
    let has = |f: &str| args.iter().any(|a| a == f);
    let answers = Answers {
        needs_consensus: !has("--no-consensus"),
        wan: has("--wan"),
        read_heavy: has("--read-heavy"),
        locality: has("--locality"),
        dynamic_locality: has("--dynamic"),
        datacenter_failure_concern: has("--dc-failure"),
    };
    let r = recommend(answers);
    println!("deployment: {answers:?}\n");
    println!("recommended category : {}", r.category);
    println!("protocols to consider: {}", r.protocols.join(", "));
    println!("rationale            : {}", r.rationale);
}

fn all_paths() {
    println!("No flags given — walking every path of the paper's Figure 14:\n");
    let base = Answers {
        needs_consensus: true,
        wan: false,
        read_heavy: false,
        locality: false,
        dynamic_locality: false,
        datacenter_failure_concern: false,
    };
    let cases = [
        ("no consensus needed", Answers { needs_consensus: false, ..base }),
        ("LAN, write-heavy", base),
        ("LAN, read-heavy", Answers { read_heavy: true, ..base }),
        ("WAN, no locality", Answers { wan: true, ..base }),
        ("WAN, static locality", Answers { wan: true, locality: true, ..base }),
        (
            "WAN, dynamic locality, region failures tolerable",
            Answers { wan: true, locality: true, dynamic_locality: true, ..base },
        ),
        (
            "WAN, dynamic locality, must survive region failure",
            Answers {
                wan: true,
                locality: true,
                dynamic_locality: true,
                datacenter_failure_concern: true,
                ..base
            },
        ),
    ];
    for (label, a) in cases {
        let r = recommend(a);
        println!("  {label:<50} -> {}", r.protocols.join(" / "));
    }

    println!("\nBack-of-the-envelope load at N = 9 (Formulas 3-6, lower is better):");
    println!("  Paxos          : {:.2}", formulas::load_paxos(9));
    println!("  EPaxos (c=0)   : {:.2}", formulas::load_epaxos(9, 0.0));
    println!("  EPaxos (c=0.5) : {:.2}", formulas::load_epaxos(9, 0.5));
    println!("  WPaxos (3x3)   : {:.2}", formulas::load_wpaxos(9, 3));

    println!("\nExpected WAN latency with DL=80ms, DQ=10ms (Formula 7):");
    for (c, l) in [(0.0, 0.0), (0.0, 0.9), (0.3, 0.9)] {
        println!(
            "  conflict={c:.1} locality={l:.1} -> {:.1} ms",
            formulas::latency(c, l, 80.0, 10.0)
        );
    }
}
