//! WAN tour: compare the protocol families across five AWS-like regions.
//!
//! Run with `cargo run --release --example wan_tour`.
//!
//! Deploys each protocol on the paper's VA/OH/CA/IR/JP topology (3 nodes per
//! region) in the deterministic simulator, drives a conflict-free workload
//! from every region, and prints per-region mean latency — a miniature of
//! the paper's §5.3 experiments.

use paxi::bench::{run, Proto};
use paxi::core::{ClusterConfig, Nanos, NodeId};
use paxi::protocols::paxos::PaxosConfig;
use paxi::protocols::vpaxos::VPaxosConfig;
use paxi::protocols::wankeeper::WanKeeperConfig;
use paxi::protocols::wpaxos::WPaxosConfig;
use paxi::sim::{ClientSetup, SimConfig, Topology};
use paxi_core::dist::Rng64;
use paxi_core::id::ClientId;
use paxi_core::Command;

fn main() {
    let regions = ["VA", "OH", "CA", "IR", "JP"];
    // Each region writes its own keys: the best case for locality-aware
    // multi-leader protocols, the worst case for a single remote leader.
    let workload = |client: ClientId, zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        let key = zone as u64 * 1000 + rng.below(20);
        Command::put(key, paxi::sim::client::unique_value(client, seq))
    };

    let protos: Vec<Proto> = vec![
        Proto::Paxos(PaxosConfig { initial_leader: NodeId::new(1, 0), ..Default::default() }),
        Proto::epaxos(),
        Proto::WPaxos(WPaxosConfig::default()),
        Proto::WanKeeper(WanKeeperConfig { master_zone: 1, ..Default::default() }),
        Proto::VPaxos(VPaxosConfig { master_zone: 1, initial_zone: 1, window: 3 }),
    ];

    println!("{:<16} {}", "protocol", regions.map(|r| format!("{r:>9}")).join(" "));
    println!("{}", "-".repeat(16 + 10 * regions.len()));
    for proto in protos {
        let cluster = ClusterConfig::wan(5, 3, 1, 0);
        let sim = SimConfig {
            topology: Topology::aws5(),
            warmup: Nanos::secs(5),
            measure: Nanos::secs(3),
            ..SimConfig::default()
        };
        let clients = ClientSetup::closed_per_zone(&cluster, 2);
        let report = run(&proto, sim, cluster, workload, clients);
        let cells: Vec<String> = (0..5u8)
            .map(|z| match report.zone_latency.get(&z) {
                Some(s) => format!("{:>7.1}ms", s.mean.as_millis_f64()),
                None => format!("{:>9}", "-"),
            })
            .collect();
        println!("{:<16} {}", proto.name(), cells.join(" "));
    }
    println!();
    println!("Reading the table: single-leader Paxos forces every region through");
    println!("Ohio and its majority quorum; the locality-aware protocols commit");
    println!("each region's keys within that region after ownership migrates.");
}
