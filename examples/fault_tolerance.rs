//! Fault tolerance: watch a Paxos cluster lose its leader and recover.
//!
//! Run with `cargo run --release --example fault_tolerance`.
//!
//! Uses the simulator's fault injection (the Paxi `Crash(t)` primitive) to
//! freeze the leader two seconds into the run, and prints a completion
//! timeline: service dips to zero during the election and resumes under the
//! new leader. A WPaxos run with the same fault shows the multi-leader
//! contrast — only the crashed zone is disturbed.

use paxi::core::{ClusterConfig, Nanos, NodeId};
use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi::protocols::wpaxos::{wpaxos_cluster, WPaxosConfig};
use paxi::sim::{ClientSetup, SimConfig, Simulator, Topology};
use paxi_core::dist::Rng64;
use paxi_core::id::ClientId;
use paxi_core::Command;

fn timeline_chart(timeline: &[(Nanos, u64)], crash_at: Nanos) {
    let max = timeline.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (t, c) in timeline {
        let bar = "#".repeat((c * 40 / max) as usize);
        let marker = if *t >= crash_at && *t < crash_at + Nanos::millis(250) { " <- leader crash" } else { "" };
        println!("  {:>6.2}s |{bar:<40}| {c}{marker}", t.as_secs_f64());
    }
}

fn main() {
    let workload = |client: ClientId, zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        Command::put(zone as u64 * 1000 + rng.below(20), paxi::sim::client::unique_value(client, seq))
    };

    println!("=== single-leader Paxos: leader crash at t=2s ===");
    let cluster = ClusterConfig::lan(5);
    let cfg = SimConfig {
        warmup: Nanos::millis(100),
        measure: Nanos::secs(5),
        client_retry: Some(Nanos::millis(500)),
        timeline_bucket: Some(Nanos::millis(250)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        paxos_cluster(
            cluster,
            PaxosConfig { election_timeout: Nanos::millis(400), ..Default::default() },
        ),
        workload,
        ClientSetup::closed_per_zone(&ClusterConfig::lan(5), 4),
    );
    sim.faults_mut().crash(NodeId::new(0, 0), Nanos::secs(2), Nanos::secs(30));
    let report = sim.run();
    timeline_chart(&report.timeline, Nanos::secs(2));
    println!("  (abandoned requests during the outage: {})\n", report.abandoned);

    println!("=== WPaxos (3 zones): zone-2 leader crash at t=2s ===");
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let cfg = SimConfig {
        topology: Topology::lan_zones(3),
        warmup: Nanos::millis(100),
        measure: Nanos::secs(5),
        timeline_bucket: Some(Nanos::millis(250)),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        cluster.clone(),
        wpaxos_cluster(cluster.clone(), WPaxosConfig::default()),
        workload,
        ClientSetup::closed_per_zone(&cluster, 4),
    );
    sim.faults_mut().crash(NodeId::new(2, 0), Nanos::secs(2), Nanos::secs(30));
    let report = sim.run();
    timeline_chart(&report.timeline, Nanos::secs(2));
    println!("  zones 0 and 1 keep full throughput: the crashed leader was");
    println!("  never on their critical path (paper §1.2).");
}
