//! Quickstart: a 3-node MultiPaxos cluster in one process.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This is Paxi's "cluster simulation" mode: every replica runs on its own
//! thread connected by channels, and a blocking client executes reads and
//! writes against the replicated key-value store.

use paxi::core::{ClusterConfig, NodeId};
use paxi::protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi::transport::InProcCluster;
use std::time::Instant;

fn main() {
    // 1. Describe the deployment: one zone, three replicas.
    let cluster = ClusterConfig::lan(3);

    // 2. Launch the replicas (node 0.0 runs phase-1 and becomes the stable
    //    multi-Paxos leader).
    let run = InProcCluster::launch(
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
    );

    // 3. Attach a client to a follower — requests are transparently
    //    forwarded to the leader, replies routed back.
    let mut client = run.client(NodeId::new(0, 1));

    println!("writing 100 keys through a follower...");
    let t0 = Instant::now();
    for key in 0..100u64 {
        let resp = client.put(key, format!("value-{key}").into_bytes()).expect("put");
        assert!(resp.ok);
    }
    println!("  done in {:?} ({:.1} ops/s)", t0.elapsed(), 100.0 / t0.elapsed().as_secs_f64());

    println!("reading them back...");
    for key in [0u64, 42, 99] {
        let resp = client.get(key).expect("get");
        println!(
            "  GET {key} -> {:?}",
            resp.value.map(|v| String::from_utf8_lossy(&v).into_owned())
        );
    }

    // 4. Writes return the previous value, like Paxi's datastore API.
    let prev = client.put(42, b"new-value".to_vec()).expect("overwrite");
    println!(
        "overwrite key 42: previous value was {:?}",
        prev.value.map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    run.shutdown();
    println!("cluster shut down cleanly");
}
