//! Prototyping a new protocol in the framework — the Paxi pitch.
//!
//! Run with `cargo run --example custom_protocol`.
//!
//! The paper's framework claim: a developer only writes two modules — the
//! message types and the replica logic — and gets networking, quorums, the
//! datastore, clients, benchmarking, and fault injection for free. This
//! example implements **primary-backup replication** (unsafe against
//! primary failure, but a fine demo) in ~80 lines, then runs it under the
//! deterministic simulator *and* the wall-clock channel runtime without
//! changing a line of protocol code.

use paxi::core::{
    ClientRequest, ClientResponse, ClusterConfig, Context, MultiVersionStore, Nanos, NodeId,
    Replica,
};
use paxi::sim::{ClientSetup, SimConfig, Simulator};
use paxi::transport::InProcCluster;
use serde::{Deserialize, Serialize};

/// Module 1: the wire messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum PbMsg {
    /// Primary -> backups: apply this command.
    Replicate { seq: u64, req: ClientRequest },
    /// Backup -> primary: applied up to `seq`.
    Ack { seq: u64, from_backup: bool },
}

/// Module 2: the replica logic.
struct PrimaryBackup {
    id: NodeId,
    n: usize,
    primary: NodeId,
    store: MultiVersionStore,
    // Primary bookkeeping: next sequence number and ack counts.
    next_seq: u64,
    pending: Vec<(u64, ClientRequest, usize)>,
}

impl PrimaryBackup {
    fn new(id: NodeId, cluster: ClusterConfig) -> Self {
        PrimaryBackup {
            id,
            n: cluster.n(),
            primary: cluster.initial_leader(),
            store: MultiVersionStore::new(),
            next_seq: 0,
            pending: Vec::new(),
        }
    }

    fn is_primary(&self) -> bool {
        self.id == self.primary
    }
}

impl Replica for PrimaryBackup {
    type Msg = PbMsg;

    fn on_message(&mut self, from: NodeId, msg: PbMsg, ctx: &mut dyn Context<PbMsg>) {
        match msg {
            PbMsg::Replicate { seq, req } => {
                // Backups apply immediately and ack.
                self.store.execute(&req.cmd);
                ctx.send(from, PbMsg::Ack { seq, from_backup: true });
            }
            PbMsg::Ack { seq, .. } => {
                if let Some(pos) = self.pending.iter().position(|(s, _, _)| *s == seq) {
                    self.pending[pos].2 += 1;
                    // All backups acked: execute at the primary and reply.
                    if self.pending[pos].2 == self.n - 1 {
                        let (_, req, _) = self.pending.remove(pos);
                        let value = self.store.execute(&req.cmd);
                        ctx.reply(ClientResponse::ok(req.id, value));
                    }
                }
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<PbMsg>) {
        if !self.is_primary() {
            ctx.forward(self.primary, req);
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((seq, req.clone(), 0));
        ctx.broadcast(PbMsg::Replicate { seq, req });
    }

    fn protocol_name(&self) -> &'static str {
        "primary-backup"
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        Some(&self.store)
    }
}

fn main() {
    // Under the simulator: measure latency/throughput deterministically.
    let cluster = ClusterConfig::lan(3);
    let c2 = cluster.clone();
    let mut sim = Simulator::new(
        SimConfig { measure: Nanos::secs(2), ..SimConfig::default() },
        cluster.clone(),
        move |id: NodeId| PrimaryBackup::new(id, c2.clone()),
        paxi::sim::client::uniform_workload(100),
        ClientSetup::closed_per_zone(&cluster, 4),
    );
    let report = sim.run();
    println!(
        "simulator: {} ops at {:.0} ops/s, mean latency {:.2} ms",
        report.completed,
        report.throughput,
        report.latency.mean.as_millis_f64()
    );

    // Under the wall-clock channel runtime: same replica code, real threads.
    let cluster = ClusterConfig::lan(3);
    let c2 = cluster.clone();
    let run = InProcCluster::launch(cluster, move |id: NodeId| PrimaryBackup::new(id, c2.clone()));
    let mut client = run.client(NodeId::new(0, 2));
    client.put(7, b"hello".to_vec()).expect("put");
    let got = client.get(7).expect("get");
    println!("wall-clock: GET 7 -> {:?}", got.value.map(|v| String::from_utf8_lossy(&v).into_owned()));
    run.shutdown();
    println!("the same ~80-line replica ran under both runtimes unchanged");
}
